"""Metrics registry: families, snapshots, merge, Prometheus text."""

import json
import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    merge_snapshots,
    percentile,
    render_prometheus,
)


def _legacy_percentile(values, q):
    """The original ``repro.serve.server._percentile``, verbatim."""
    rank = max(0, min(len(values) - 1, int(round(q * (len(values) - 1)))))
    return values[rank]


class TestPercentile:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 100, 4096])
    @pytest.mark.parametrize("q", [0.0, 0.5, 0.95, 0.99, 1.0])
    def test_matches_legacy_serve_percentile(self, n, q):
        values = sorted((i * 37 % n) / 7.0 for i in range(n))
        assert percentile(values, q) == _legacy_percentile(values, q)

    def test_nearest_rank_examples(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 3.0
        assert percentile([5.0], 0.99) == 5.0


class TestFamilies:
    def test_counter_identity_and_inc(self):
        registry = MetricsRegistry()
        c = registry.counter("requests_total")
        c.inc()
        c.inc(3)
        assert registry.counter("requests_total") is c
        assert c.value == 4

    def test_labels_create_distinct_metrics(self):
        registry = MetricsRegistry()
        a = registry.counter("gemm_calls_total", engine="sequential")
        b = registry.counter("gemm_calls_total", engine="pairwise")
        assert a is not b
        a.inc()
        assert b.value == 0

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", one="1", two="2")
        b = registry.counter("x_total", two="2", one="1")
        assert a is b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing")

    def test_gauge_agg_conflict_raises(self):
        registry = MetricsRegistry()
        registry.gauge("depth", agg="max")
        with pytest.raises(ValueError, match="agg"):
            registry.gauge("depth", agg="sum")

    def test_gauge_set_max(self):
        registry = MetricsRegistry()
        g = registry.gauge("peak", agg="max")
        g.set_max(3)
        g.set_max(1)
        assert g.value == 3

    def test_histogram_window_and_totals(self):
        registry = MetricsRegistry()
        h = registry.histogram("latency_ms", window=4)
        for v in [5.0, 1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        assert h.count == 5
        assert h.total == 15.0
        assert h.window_values() == [1.0, 2.0, 3.0, 4.0]  # 5.0 slid out
        assert h.quantile(0.5) == 3.0

    def test_counter_thread_safety(self):
        registry = MetricsRegistry()
        c = registry.counter("contended_total")

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestSnapshotMerge:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("requests_total").inc(2)
        registry.counter("gemm_calls_total", engine="sequential").inc(7)
        registry.gauge("cache_entries").set(3)
        registry.gauge("batch_max", agg="max").set_max(5)
        registry.histogram("latency_ms", window=8).observe(1.5)
        return registry

    def test_snapshot_is_plain_json_data(self):
        snap = self._registry().snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["counters"]["requests_total"] == 2
        assert snap["counters"]['gemm_calls_total{engine="sequential"}'] == 7
        assert snap["gauges"]["cache_entries"]["value"] == 3
        assert snap["histograms"]["latency_ms"]["window"] == [1.5]

    def test_reset_zeroes_but_keeps_families(self):
        registry = self._registry()
        registry.reset()
        snap = registry.snapshot()
        assert snap["counters"]["requests_total"] == 0
        assert snap["histograms"]["latency_ms"]["count"] == 0

    def test_merge_counters_add(self):
        a, b = self._registry().snapshot(), self._registry().snapshot()
        merged = merge_snapshots([a, b])
        assert merged["counters"]["requests_total"] == 4

    def test_merge_gauges_by_agg(self):
        a, b = self._registry().snapshot(), self._registry().snapshot()
        b["gauges"]["batch_max"]["value"] = 9
        merged = merge_snapshots([a, b])
        assert merged["gauges"]["cache_entries"]["value"] == 6   # sum
        assert merged["gauges"]["batch_max"]["value"] == 9       # max

    def test_merge_histograms_concat_bounded(self):
        a, b = self._registry().snapshot(), self._registry().snapshot()
        a["histograms"]["latency_ms"]["window"] = [float(i)
                                                   for i in range(8)]
        b["histograms"]["latency_ms"]["window"] = [float(i)
                                                   for i in range(8, 16)]
        merged = merge_snapshots([a, b])
        entry = merged["histograms"]["latency_ms"]
        assert entry["count"] == 2
        assert len(entry["window"]) == 8   # bounded by window_size
        assert entry["window"] == [float(i) for i in range(8, 16)]

    def test_merge_is_associative_on_counters(self):
        snaps = [self._registry().snapshot() for _ in range(3)]
        left = merge_snapshots([merge_snapshots(snaps[:2]), snaps[2]])
        right = merge_snapshots([snaps[0], merge_snapshots(snaps[1:])])
        assert left["counters"] == right["counters"]

    def test_merge_skips_empty(self):
        snap = self._registry().snapshot()
        merged = merge_snapshots([{}, snap])
        assert merged["counters"] == snap["counters"]


class TestPrometheusText:
    def test_render_families_and_samples(self):
        registry = MetricsRegistry()
        registry.counter("requests_total").inc(2)
        registry.counter("gemm_calls_total", engine="sequential").inc(7)
        registry.gauge("cache_entries").set(3)
        h = registry.histogram("latency_ms", window=8)
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE requests_total counter" in text
        assert "requests_total 2" in text
        assert 'gemm_calls_total{engine="sequential"} 7' in text
        assert "# TYPE cache_entries gauge" in text
        assert "cache_entries 3" in text
        assert "# TYPE latency_ms summary" in text
        assert 'latency_ms{quantile="0.5"} 3' in text
        assert "latency_ms_sum 10" in text
        assert "latency_ms_count 4" in text
        assert text.endswith("\n")

    def test_render_is_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("b_total").inc()
        registry.counter("a_total").inc()
        snap = registry.snapshot()
        assert render_prometheus(snap) == render_prometheus(snap)
        lines = render_prometheus(snap).splitlines()
        assert lines.index("# TYPE a_total counter") < \
            lines.index("# TYPE b_total counter")

    def test_render_empty_snapshot(self):
        assert render_prometheus(MetricsRegistry().snapshot()) == ""

    def test_quantile_labels_merge_into_existing(self):
        registry = MetricsRegistry()
        registry.histogram("span_ms", window=4, phase="gemm").observe(2.5)
        text = render_prometheus(registry.snapshot())
        assert 'span_ms{phase="gemm",quantile="0.5"} 2.5' in text
        assert 'span_ms_sum{phase="gemm"} 2.5' in text
