"""ASIC technology model tests."""

import pytest

from repro.rtl.components import register, ripple_adder
from repro.rtl.designs import build_adder_netlist
from repro.rtl.mac import MACConfig
from repro.rtl.netlist import Netlist
from repro.synth.asic import AsicTech, SynthReport


def _toy_netlist():
    net = Netlist("toy")
    net.stage("a", [ripple_adder("add", 8)])
    net.stage("r", [register("reg", 8)])
    return net


class TestSynthesize:
    def test_report_fields(self):
        report = AsicTech().synthesize(_toy_netlist())
        assert isinstance(report, SynthReport)
        assert report.area_um2 > 0
        assert report.delay_ns > 0
        assert report.energy_nw_mhz > 0
        assert report.name == "toy"

    def test_linear_in_scales(self):
        net = _toy_netlist()
        base = AsicTech().synthesize(net)
        doubled = AsicTech(
            area_um2_per_ge=2 * AsicTech().area_um2_per_ge
        ).synthesize(net)
        assert doubled.area_um2 == pytest.approx(2 * base.area_um2)
        assert doubled.delay_ns == pytest.approx(base.delay_ns)

    def test_as_tuple_order(self):
        report = AsicTech().synthesize(_toy_netlist())
        energy, area, delay = report.as_tuple()
        assert energy == report.energy_nw_mhz
        assert area == report.area_um2
        assert delay == report.delay_ns


class TestCalibration:
    def test_calibrated_hits_targets_exactly(self):
        net = build_adder_netlist(MACConfig(8, 23, "rn", True, 0))
        tech = AsicTech().calibrated(net, area_um2=1404.01, delay_ns=4.71,
                                     energy_nw_mhz=1.17)
        report = tech.synthesize(net)
        assert report.area_um2 == pytest.approx(1404.01)
        assert report.delay_ns == pytest.approx(4.71)
        assert report.energy_nw_mhz == pytest.approx(1.17)

    def test_calibration_preserves_ratios(self):
        net_a = build_adder_netlist(MACConfig(8, 23, "rn", True, 0))
        net_b = build_adder_netlist(MACConfig(6, 5, "rn", True, 0))
        raw = AsicTech()
        cal = raw.calibrated(net_a, 1404.01, 4.71, 1.17)
        raw_ratio = raw.synthesize(net_a).area_um2 / raw.synthesize(net_b).area_um2
        cal_ratio = cal.synthesize(net_a).area_um2 / cal.synthesize(net_b).area_um2
        assert cal_ratio == pytest.approx(raw_ratio)
