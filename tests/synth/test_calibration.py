"""The calibrated models must reproduce the paper's qualitative claims."""

import pytest

from repro.experiments import records
from repro.rtl.designs import build_adder_netlist
from repro.synth import calibrated_asic_tech, config_from_key


def _synthesize_all():
    tech = calibrated_asic_tech()
    results = {}
    for key in records.TABLE1:
        net = build_adder_netlist(config_from_key(key))
        results[key] = tech.synthesize(net)
    return results


@pytest.fixture(scope="module")
def table1():
    return _synthesize_all()


class TestAnchor:
    def test_anchor_row_exact(self, table1):
        anchor = records.TABLE1_ANCHOR
        row = records.TABLE1[anchor]
        report = table1[anchor]
        assert report.area_um2 == pytest.approx(row.area_um2)
        assert report.delay_ns == pytest.approx(row.delay_ns)
        assert report.energy_nw_mhz == pytest.approx(row.energy_nw_mhz)


class TestQualitativeClaims:
    def test_eager_beats_lazy_everywhere(self, table1):
        for key in records.TABLE1:
            rounding, sub, e, m, r = key
            if rounding != "sr_lazy":
                continue
            eager_key = ("sr_eager", sub, e, m, r)
            assert table1[eager_key].area_um2 < table1[key].area_um2
            assert table1[eager_key].delay_ns < table1[key].delay_ns
            assert table1[eager_key].energy_nw_mhz < table1[key].energy_nw_mhz

    def test_removing_subnormals_saves_area(self, table1):
        for key in records.TABLE1:
            rounding, sub, e, m, r = key
            if not sub:
                continue
            nosub_key = (rounding, False, e, m, r)
            assert table1[nosub_key].area_um2 < table1[key].area_um2

    def test_costs_monotone_in_format(self, table1):
        order = [(8, 23), (5, 10), (8, 7), (6, 5)]
        for rounding in ("rn", "sr_lazy", "sr_eager"):
            for sub in (True, False):
                areas = []
                for e, m in order:
                    r = 0 if rounding == "rn" else m + 4
                    areas.append(table1[(rounding, sub, e, m, r)].area_um2)
                assert areas == sorted(areas, reverse=True)

    def test_quantitative_agreement_within_tolerance(self, table1):
        """Every predicted row lands within 25% of the published value."""
        for key, row in records.TABLE1.items():
            report = table1[key]
            assert report.area_um2 == pytest.approx(row.area_um2, rel=0.25)
            assert report.delay_ns == pytest.approx(row.delay_ns, rel=0.25)
            assert report.energy_nw_mhz == pytest.approx(row.energy_nw_mhz,
                                                         rel=0.30)


class TestHeadlineClaims:
    """Sec. IV-C: the 12-bit eager SR design vs FP32/FP16 references."""

    def test_roughly_half_of_fp32(self, table1):
        eager = table1[("sr_eager", False, 6, 5, 9)]
        fp32 = table1[("rn", True, 8, 23, 0)]
        assert eager.delay_ns < 0.62 * fp32.delay_ns
        assert eager.area_um2 < 0.62 * fp32.area_um2
        assert eager.energy_nw_mhz < 0.62 * fp32.energy_nw_mhz

    def test_beats_fp16_rn(self, table1):
        eager = table1[("sr_eager", False, 6, 5, 9)]
        fp16 = table1[("rn", True, 5, 10, 0)]
        assert eager.delay_ns < fp16.delay_ns * 0.85
        assert eager.area_um2 < fp16.area_um2 * 0.92
        assert eager.energy_nw_mhz < fp16.energy_nw_mhz * 0.92
