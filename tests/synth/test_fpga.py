"""FPGA technology model tests."""

import pytest

from repro.rtl.components import (
    barrel_shifter,
    lfsr,
    register,
    ripple_adder,
)
from repro.rtl.designs import build_adder_netlist
from repro.rtl.mac import MACConfig
from repro.rtl.netlist import Netlist
from repro.synth.fpga import FpgaTech, component_luts


class TestComponentLuts:
    def test_carry_chain_one_lut_per_bit(self):
        assert component_luts(ripple_adder("a", 16)) == 16

    def test_shifter_two_muxes_per_lut(self):
        comp = barrel_shifter("b", 8, 8)
        assert component_luts(comp) == comp.gates["mux2"] / 2

    def test_registers_no_luts(self):
        assert component_luts(register("r", 16)) == 0

    def test_lfsr_feedback_only(self):
        comp = lfsr("f", 13, taps=4)
        assert component_luts(comp) == 2  # 4 xor / 2


class TestImplement:
    def test_ff_count_includes_registers(self):
        net = Netlist("n")
        net.stage("r", [register("in", 24), register("out", 12)])
        report = FpgaTech(extra_ffs=0).implement(net)
        assert report.ffs == 36

    def test_delay_has_floor(self):
        net = Netlist("empty")
        report = FpgaTech().implement(net)
        assert report.delay_ns == pytest.approx(FpgaTech().delay_t0_ns)


class TestCalibration:
    def test_calibrated_hits_anchor(self):
        net = build_adder_netlist(MACConfig(5, 10, "rn", True, 0))
        tech = FpgaTech().calibrated(net, luts=302, ffs=49, delay_ns=8.30)
        report = tech.implement(net)
        assert report.luts == pytest.approx(302)
        assert report.ffs == pytest.approx(49)
        assert report.delay_ns == pytest.approx(8.30)

    def test_table2_orderings(self):
        """Eager uses fewer LUTs and less delay than lazy (Table II)."""
        from repro.synth import calibrated_fpga_tech

        tech = calibrated_fpga_tech()
        lazy = tech.implement(
            build_adder_netlist(MACConfig(6, 5, "sr_lazy", False, 13)))
        eager = tech.implement(
            build_adder_netlist(MACConfig(6, 5, "sr_eager", False, 13)))
        assert eager.luts < lazy.luts
        assert eager.delay_ns < lazy.delay_ns
        assert eager.ffs == lazy.ffs  # same staging registers
