"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.fp.formats import FP8_E4M3, FP8_E5M2, FP12_E6M5, FP16, FP32, FPFormat


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(params=["E6M5", "E6M5-fz", "FP16", "E4M3"])
def any_format(request):
    return {
        "E6M5": FP12_E6M5,
        "E6M5-fz": FP12_E6M5.with_subnormals(False),
        "FP16": FP16,
        "E4M3": FP8_E4M3,
    }[request.param]


@pytest.fixture
def small_format():
    """A format small enough for exhaustive enumeration."""
    return FPFormat(4, 3)


@pytest.fixture
def small_format_fz():
    return FPFormat(4, 3, subnormals=False)
