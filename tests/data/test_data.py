"""Synthetic dataset and loader tests."""

import numpy as np
import pytest

from repro.data import (
    BatchLoader,
    augment,
    loaders_for,
    make_cifar10_like,
    make_imagewoof_like,
)
from repro.models import MLP
from repro.nn.loss import CrossEntropyLoss


class TestSyntheticDatasets:
    def test_shapes_and_ranges(self):
        ds = make_cifar10_like(n_train=100, n_test=40, image_size=8)
        assert ds.train_images.shape == (100, 3, 8, 8)
        assert ds.test_images.shape == (40, 3, 8, 8)
        assert ds.train_labels.shape == (100,)
        assert ds.num_classes == 10
        assert set(np.unique(ds.train_labels)) <= set(range(10))

    def test_deterministic_per_seed(self):
        a = make_cifar10_like(n_train=50, n_test=10, seed=3)
        b = make_cifar10_like(n_train=50, n_test=10, seed=3)
        assert np.array_equal(a.train_images, b.train_images)
        c = make_cifar10_like(n_train=50, n_test=10, seed=4)
        assert not np.array_equal(a.train_images, c.train_images)

    def test_classes_are_learnable(self, rng):
        """A linear probe must beat chance by a wide margin — the classes
        carry real signal."""
        ds = make_cifar10_like(n_train=600, n_test=200, image_size=8, seed=0)
        model = MLP(3 * 8 * 8, [32], num_classes=10, seed=1)
        criterion = CrossEntropyLoss()
        x = ds.train_images.reshape(600, -1)
        for _ in range(60):
            model.zero_grad()
            criterion(model(ds.train_images), ds.train_labels)
            model.backward(criterion.backward())
            for p in model.parameters():
                p.data -= 0.1 * p.grad
        logits = model(ds.test_images)
        accuracy = np.mean(np.argmax(logits, axis=1) == ds.test_labels)
        assert accuracy > 0.35  # 3.5x chance

    def test_imagewoof_harder_than_cifar(self):
        """The Imagewoof stand-in must be the harder dataset (shared base
        texture): class-mean separation is lower."""

        def separation(ds):
            means = np.array([
                ds.train_images[ds.train_labels == c].mean(axis=0).ravel()
                for c in range(ds.num_classes)
            ])
            centered = means - means.mean(axis=0)
            between = np.linalg.norm(centered) ** 2
            within = ds.train_images.var()
            return between / within

        cifar = make_cifar10_like(n_train=500, n_test=10, image_size=8)
        woof = make_imagewoof_like(n_train=500, n_test=10, image_size=8)
        assert separation(woof) < separation(cifar)

    def test_image_shape_property(self):
        ds = make_imagewoof_like(n_train=10, n_test=5, image_size=12)
        assert ds.image_shape == (3, 12, 12)


class TestBatchLoader:
    def test_batch_shapes_and_counts(self, rng):
        images = rng.normal(size=(130, 3, 4, 4))
        labels = rng.integers(0, 10, size=130)
        loader = BatchLoader(images, labels, batch_size=32)
        batches = list(loader)
        assert len(batches) == 5
        assert batches[0][0].shape == (32, 3, 4, 4)
        assert batches[-1][0].shape == (2, 3, 4, 4)
        assert len(loader) == 5

    def test_drop_last(self, rng):
        loader = BatchLoader(rng.normal(size=(130, 1, 2, 2)),
                             rng.integers(0, 2, size=130),
                             batch_size=32, drop_last=True)
        assert len(list(loader)) == 4
        assert len(loader) == 4

    def test_shuffling_changes_order_not_content(self, rng):
        images = np.arange(40, dtype=np.float64).reshape(40, 1, 1, 1)
        labels = np.arange(40, dtype=np.int64)
        loader = BatchLoader(images, labels, batch_size=40, shuffle=True,
                             seed=1)
        batch_images, batch_labels = next(iter(loader))
        assert not np.array_equal(batch_labels, labels)
        assert set(batch_labels.tolist()) == set(labels.tolist())
        # labels still match their images
        assert np.array_equal(batch_images[:, 0, 0, 0].astype(np.int64),
                              batch_labels)

    def test_no_shuffle_preserves_order(self, rng):
        labels = np.arange(10, dtype=np.int64)
        loader = BatchLoader(rng.normal(size=(10, 1, 1, 1)), labels,
                             batch_size=4, shuffle=False)
        collected = np.concatenate([b[1] for b in loader])
        assert np.array_equal(collected, labels)

    def test_callable_returns_fresh_iterator(self, rng):
        loader = BatchLoader(rng.normal(size=(8, 1, 2, 2)),
                             rng.integers(0, 2, size=8), batch_size=8)
        first = list(loader())
        second = list(loader())
        assert len(first) == len(second) == 1


class _FixedRng:
    """Stub generator forcing specific flips/shifts out of ``augment``."""

    def __init__(self, flips, shifts):
        self._flips = np.asarray(flips, dtype=np.float64)
        self._shifts = np.asarray(shifts, dtype=np.int64)

    def random(self, n):
        return self._flips[:n]

    def integers(self, low, high, size):
        return self._shifts[:size[0]]


class TestAugmentation:
    def test_preserves_shape(self, rng):
        images = rng.normal(size=(20, 3, 8, 8))
        out = augment(images, rng)
        assert out.shape == images.shape

    def test_flip_preserves_pixel_multiset(self, rng):
        """With shifts disabled, augmentation only mirrors images."""
        images = rng.normal(size=(20, 3, 8, 8))
        out = augment(images, rng, max_shift=0)
        assert np.allclose(np.sort(out.reshape(20, -1), axis=1),
                           np.sort(images.reshape(20, -1), axis=1))

    def test_shift_zero_fills_instead_of_wrapping(self, rng):
        """The entering edge is zeros; nothing leaks from the far edge
        (the np.roll wrap-around bug)."""
        images = rng.normal(size=(4, 3, 8, 8)) + 10.0  # strictly nonzero
        stub = _FixedRng(flips=np.ones(4),  # >= 0.5: no flips
                         shifts=[(1, 0), (-1, 0), (0, 1), (0, -1)])
        out = augment(images, stub)
        # dy=+1: content moves down, top row zero-filled
        assert np.array_equal(out[0][:, 0, :], np.zeros((3, 8)))
        assert np.array_equal(out[0][:, 1:, :], images[0][:, :-1, :])
        # dy=-1: content moves up, bottom row zero-filled
        assert np.array_equal(out[1][:, -1, :], np.zeros((3, 8)))
        assert np.array_equal(out[1][:, :-1, :], images[1][:, 1:, :])
        # dx=+1: left column zero-filled
        assert np.array_equal(out[2][:, :, 0], np.zeros((3, 8)))
        assert np.array_equal(out[2][:, :, 1:], images[2][:, :, :-1])
        # dx=-1: right column zero-filled
        assert np.array_equal(out[3][:, :, -1], np.zeros((3, 8)))
        assert np.array_equal(out[3][:, :, :-1], images[3][:, :, 1:])

    def test_does_not_mutate_input(self, rng):
        images = rng.normal(size=(10, 3, 8, 8))
        copy = images.copy()
        augment(images, rng)
        assert np.array_equal(images, copy)

    def test_loaders_for_pair(self):
        ds = make_cifar10_like(n_train=64, n_test=32, image_size=8)
        train, test = loaders_for(ds, batch_size=16)
        assert train.augment_data and not test.augment_data
        assert not test.shuffle
