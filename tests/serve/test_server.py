"""End-to-end serving: train tiny -> save -> serve -> concurrent HTTP.

Mirrors the CI smoke job and the ISSUE 4 acceptance demo: concurrent
``/predict`` requests return bit-identical logits for the same input
independent of batch composition and ``--workers``, with ``/stats``
showing cache hits > 0 on repeated inputs.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.data import loaders_for, make_cifar10_like
from repro.emu import GemmConfig
from repro.models import SimpleCNN, simple_cnn_spec
from repro.nn import Trainer, save_checkpoint
from repro.serve import InferenceSession, ServerApp, make_server

SRC = Path(__file__).resolve().parents[2] / "src"


def _train_tiny_cnn(tmp_path):
    """A few FP64 optimization steps, then checkpoint for SR serving."""
    dataset = make_cifar10_like(64, 16, 8, seed=0)
    model = SimpleCNN(dataset.num_classes, 3, 4, seed=1)
    train_loader, _ = loaders_for(dataset, batch_size=32, seed=0)
    trainer = Trainer(model, lr=0.05, epochs=1, weight_decay=1e-4)
    for images, labels in train_loader():
        trainer.train_batch(images, labels)
    path = tmp_path / "tiny_cnn.npz"
    spec = simple_cnn_spec(num_classes=dataset.num_classes, in_channels=3,
                           width=4, image_size=8, seed=1)
    save_checkpoint(model, path, model_spec=spec,
                    gemm_config=GemmConfig.sr(9, seed=3))
    return path


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    return _train_tiny_cnn(tmp_path_factory.mktemp("serve"))


def _post(url, payload, timeout=30):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _get(url, timeout=30):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, json.loads(response.read())


class _RunningServer:
    def __init__(self, checkpoint, workers):
        session = InferenceSession.from_checkpoint(checkpoint,
                                                   workers=workers)
        self.app = ServerApp(session, max_batch_size=4, max_delay_ms=5.0,
                             cache_entries=64)
        self.server = make_server(self.app, port=0)
        self.url = "http://127.0.0.1:%d" % self.server.server_address[1]
        self.thread = threading.Thread(target=self.server.serve_forever,
                                       daemon=True)
        self.thread.start()

    def stop(self):
        self.server.shutdown()
        self.server.server_close()
        self.app.close()


class TestServingEndToEnd:
    def test_concurrent_requests_and_cache(self, checkpoint, rng):
        running = _RunningServer(checkpoint, workers=1)
        try:
            base = rng.normal(size=(3, 8, 8)).tolist()
            others = [rng.normal(size=(3, 8, 8)).tolist()
                      for _ in range(3)]
            results = {}

            def client(i, payload):
                results[i] = _post(running.url + "/predict",
                                   {"input": payload})

            # same input from 4 threads + 3 distinct companions
            threads = [threading.Thread(target=client, args=(i, base))
                       for i in range(4)]
            threads += [threading.Thread(target=client, args=(4 + j, x))
                        for j, x in enumerate(others)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            assert all(status == 200 for status, _ in results.values())
            same = [body["logits"] for _, body in results.values()
                    if body["key"] == results[0][1]["key"]]
            assert len(same) == 4
            assert all(logits == same[0] for logits in same), \
                "identical inputs answered differently"

            # repeats must be cache hits with identical logits
            status, repeat = _post(running.url + "/predict",
                                   {"input": base})
            assert status == 200 and repeat["cached"]
            assert repeat["logits"] == same[0]

            status, stats = _get(running.url + "/stats")
            assert status == 200
            assert stats["cache"]["hits"] > 0
            assert stats["requests"] == 8
            assert stats["batcher"]["samples"] >= 1
            assert stats["latency_ms"]["count"] == 8

            status, health = _get(running.url + "/healthz")
            assert status == 200 and health["status"] == "ok"
            assert health["config"] == "SR E6M5 r=9"
        finally:
            running.stop()

    def test_workers_do_not_change_answers(self, checkpoint, rng):
        x = rng.normal(size=(3, 8, 8)).tolist()
        logits = []
        for workers in (1, 2):
            running = _RunningServer(checkpoint, workers=workers)
            try:
                status, body = _post(running.url + "/predict",
                                     {"input": x})
                assert status == 200
                logits.append(body["logits"])
            finally:
                running.stop()
        assert logits[0] == logits[1], "--workers changed served logits"

    def test_error_paths(self, checkpoint):
        running = _RunningServer(checkpoint, workers=1)
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(running.url + "/predict", {"input": [[0.0]]})
            assert err.value.code == 400
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(running.url + "/predict", {"wrong": 1})
            assert err.value.code == 400
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(running.url + "/nope")
            assert err.value.code == 404
            status, stats = _get(running.url + "/stats")
            assert stats["errors"] == 2
        finally:
            running.stop()


class TestServeCli:
    def test_module_entry_point(self, checkpoint):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve",
             "--checkpoint", str(checkpoint), "--port", "0",
             "--workers", "1", "--max-delay-ms", "1"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env)
        try:
            url = None
            for _ in range(50):
                line = proc.stdout.readline()
                if line.startswith("serving on "):
                    url = line.split()[-1].strip()
                    break
            assert url, "server never announced its address"
            status, health = _get(url + "/healthz", timeout=10)
            assert status == 200 and health["status"] == "ok"
            status, body = _post(url + "/predict",
                                 {"input": np.zeros((3, 8, 8)).tolist()},
                                 timeout=30)
            assert status == 200 and len(body["logits"]) == 10
        finally:
            proc.send_signal(signal.SIGINT)
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
