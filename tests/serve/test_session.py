"""InferenceSession: freezing, keying, and batch-composition invariance.

The headline contract (ISSUE 4 / DESIGN.md section 8): a request's
logits are a pure function of (checkpoint, datapath config, input
bytes) — independent of which micro-batch the request lands in and of
the worker count.
"""

import numpy as np
import pytest

from repro.emu import GemmConfig
from repro.fp.formats import FP16
from repro.models import MLP, SimpleCNN, TinyTransformer
from repro.prng.streams import LFSRStream
from repro.serve import InferenceSession
from repro.serve.session import _root_base

MAX_BATCH = 8


def _sr(rbits, seed=3):
    return GemmConfig.sr(rbits, seed=seed)


def _cnn_session(config, workers=1, **kwargs):
    return InferenceSession(SimpleCNN(4, 3, 4, seed=1), config,
                            workers=workers, **kwargs)


@pytest.fixture
def images(rng):
    return [rng.normal(size=(3, 8, 8)) for _ in range(MAX_BATCH)]


class TestBatchCompositionInvariance:
    """Same request alone, in a batch of 3, and in a batch of
    ``max_batch_size`` — bit-identical logits, for SR formats, across
    workers {1, 2}."""

    @pytest.mark.parametrize("rbits", [4, 9, 13])
    def test_cnn_sr_invariance(self, rbits, images):
        reference = None
        for workers in (1, 2):
            session = _cnn_session(_sr(rbits), workers=workers)
            alone = session.predict(images[0])
            batch3 = session.predict_batch([images[1], images[0],
                                            images[2]])[1]
            full = session.predict_batch(images)[0]
            assert np.array_equal(alone, batch3), \
                f"r={rbits} workers={workers}: batch-of-3 diverged"
            assert np.array_equal(alone, full), \
                f"r={rbits} workers={workers}: full batch diverged"
            if reference is None:
                reference = alone
            else:
                assert np.array_equal(alone, reference), \
                    f"r={rbits}: workers={workers} diverged from workers=1"

    def test_cnn_rn_invariance(self, images):
        session = _cnn_session(GemmConfig.rn(FP16))
        alone = session.predict(images[0])
        assert np.array_equal(alone, session.predict_batch(images)[0])

    def test_transformer_sr_invariance(self, rng):
        tokens = [rng.integers(0, 16, size=(12,)) for _ in range(4)]
        reference = None
        for workers in (1, 2):
            session = InferenceSession(
                TinyTransformer(16, 4, d_model=16, n_heads=2, max_len=16,
                                seed=2),
                _sr(9, seed=5), workers=workers)
            alone = session.predict(tokens[0])
            batched = session.predict_batch(tokens)[0]
            assert np.array_equal(alone, batched)
            if reference is None:
                reference = alone
            else:
                assert np.array_equal(alone, reference)

    def test_mlp_lfsr_stream_invariance(self, rng):
        xs = [rng.normal(size=(12,)) for _ in range(3)]

        def build(workers):
            from dataclasses import replace

            config = replace(GemmConfig.sr(9, seed=1),
                             stream=LFSRStream(lanes=256, seed=1))
            return InferenceSession(MLP(12, [8], 3, seed=4), config,
                                    workers=workers)

        session = build(1)
        alone = session.predict(xs[0])
        assert np.array_equal(alone, session.predict_batch(xs)[0])
        assert np.array_equal(alone, build(2).predict(xs[0]))

    def test_repeat_is_deterministic(self, images):
        session = _cnn_session(_sr(9))
        assert np.array_equal(session.predict(images[0]),
                              session.predict(images[0]))

    def test_order_within_batch_irrelevant(self, images):
        session = _cnn_session(_sr(9))
        forward = session.predict_batch(images[:3])
        backward = session.predict_batch(images[:3][::-1])
        for a, b in zip(forward, backward[::-1]):
            assert np.array_equal(a, b)


class TestFreezing:
    def test_weights_quantized_once_at_load(self):
        config = _sr(9)
        model = SimpleCNN(4, 3, 4, seed=1)
        session = InferenceSession(model, config)
        from repro.fp.quantize import quantize

        head = model.head.weight.data
        assert np.array_equal(
            head, quantize(head, config.mul_format, "nearest"))
        assert id(head) in session._gemm.frozen_ids

    def test_model_left_in_eval_mode(self):
        model = SimpleCNN(4, 3, 4, seed=1)
        InferenceSession(model, _sr(9))
        assert all(not m.training for m in model.modules())

    def test_exact_baseline_freezes_nothing(self):
        model = SimpleCNN(4, 3, 4, seed=1)
        before = model.head.weight.data.copy()
        session = InferenceSession(model, None)
        assert session._gemm.frozen_ids == frozenset()
        assert np.array_equal(model.head.weight.data, before)

    def test_root_base_walks_view_chains(self, rng):
        base = rng.normal(size=(4, 5))
        assert _root_base(np.broadcast_to(base.T, (3, 5, 4))) is base
        assert _root_base(base[1:].T) is base


class TestContentKeys:
    def test_same_input_same_key(self, images):
        session = _cnn_session(_sr(9))
        assert session.content_key(images[0]) == \
            session.content_key(images[0].copy())

    def test_different_input_different_key(self, images):
        session = _cnn_session(_sr(9))
        assert session.content_key(images[0]) != \
            session.content_key(images[1])

    def test_fingerprint_feeds_key(self, images):
        a = _cnn_session(_sr(9), fingerprint="aaaa")
        b = _cnn_session(_sr(9), fingerprint="bbbb")
        assert a.content_key(images[0]) != b.content_key(images[0])

    def test_gemm_unarmed_outside_predict(self, images):
        session = _cnn_session(_sr(9))
        session.predict(images[0])
        with pytest.raises(RuntimeError, match="predict_batch"):
            session._gemm(np.ones((2, 3)), np.ones((3, 2)))


class TestValidateInput:
    def test_image_shape_enforced(self, images):
        session = _cnn_session(
            _sr(9), input_spec={"kind": "image", "shape": [3, 8, 8]})
        assert session.validate_input(images[0]).shape == (3, 8, 8)
        with pytest.raises(ValueError, match="expected input shape"):
            session.validate_input(np.zeros((3, 4, 4)))

    def test_tokens_validated(self):
        spec = {"kind": "tokens", "seq_len": 6, "vocab_size": 16}
        session = InferenceSession(
            TinyTransformer(16, 4, d_model=8, n_heads=2, max_len=8, seed=0),
            _sr(9), input_spec=spec)
        out = session.validate_input([1.0, 2, 3, 4, 5, 6])
        assert out.dtype == np.int64
        with pytest.raises(ValueError, match="token ids"):
            session.validate_input([99, 0, 0, 0, 0, 0])
        with pytest.raises(ValueError, match="integral"):
            session.validate_input([0.5, 0, 0, 0, 0, 0])
        with pytest.raises(ValueError, match="token shape"):
            session.validate_input([1, 2, 3])

    def test_empty_batch(self, images):
        session = _cnn_session(_sr(9))
        assert session.predict_batch([]) == []

    def test_key_count_mismatch(self, images):
        session = _cnn_session(_sr(9))
        with pytest.raises(ValueError, match="keys"):
            session.predict_batch([images[0]], keys=[(1,), (2,)])
