"""Fault injection: worker crashes and live checkpoint swaps.

Two failure modes the pool must absorb without breaking the
reproducibility contract:

* **SIGKILL** of a replica — the monitor respawns it over the same
  shared segment; requests in flight on the survivors are unaffected
  (crash-retry re-routes are idempotent because the answer is a pure
  function of the request bytes); the respawned replica answers
  byte-identically to the single-process baseline.
* **Drain-and-swap reload** under live traffic — zero dropped
  requests; every response matches the old *or* the new checkpoint's
  baseline (never a torn mix); the old segment is unlinked afterwards.
"""

import glob
import os
import signal
import threading
import time

from repro.serve import InferenceSession, ReplicaPool, ServerApp
from repro.serve.pool import response_bytes

POLL_S = 0.05


def _baseline_bytes(checkpoint, inputs):
    app = ServerApp(InferenceSession.from_checkpoint(checkpoint),
                    max_batch_size=4, max_delay_ms=1.0, cache_entries=16)
    try:
        return [response_bytes(app.predict_json({"input": x}))
                for x in inputs]
    finally:
        app.close()


def _wait_all_ready(pool, *, min_restarts, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        health = pool.health()
        if health["restarts"] >= min_restarts and \
                health["status"] == "ok":
            return health
        time.sleep(POLL_S)
    raise AssertionError(
        f"pool never recovered: {pool.health()}")


class TestWorkerCrash:
    def test_sigkill_respawn_bit_identical(self, serve_checkpoint, rng):
        path = serve_checkpoint("sr_r9")
        inputs = [rng.normal(size=(3, 8, 8)).tolist() for _ in range(4)]
        want = _baseline_bytes(path, inputs)
        with ReplicaPool(path, replicas=2, start_method="fork",
                         max_delay_ms=1.0) as pool:
            victim_pid = pool.replicas()[0].pid

            errors = []
            results = {}

            def client(i):
                try:
                    for lap in range(3):
                        body = pool.predict_json(
                            {"input": inputs[i % len(inputs)]})
                        results[(i, lap)] = (i % len(inputs),
                                             response_bytes(body))
                except Exception as error:   # noqa: BLE001 - recorded
                    errors.append(error)

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(4)]
            for t in threads:
                t.start()
            time.sleep(0.2)
            os.kill(victim_pid, signal.SIGKILL)
            for t in threads:
                t.join()

            assert not errors, \
                f"requests failed across the crash: {errors[:3]}"
            for which, got in results.values():
                assert got == want[which], \
                    "a response diverged from the baseline during the crash"

            health = _wait_all_ready(pool, min_restarts=1)
            assert health["restarts"] >= 1
            new_pid = pool.replicas()[0].pid
            assert new_pid != victim_pid

            # the respawned replica itself answers byte-identically
            for x, reference in zip(inputs, want):
                assert response_bytes(
                    pool.predict_on(0, {"input": x})) == reference
                assert response_bytes(
                    pool.predict_on(1, {"input": x})) == reference


class TestDrainAndSwap:
    def test_reload_under_traffic_zero_drops(self, serve_checkpoint, rng):
        path_old = serve_checkpoint("sr_r9")
        path_new = serve_checkpoint("sr_r9_lfsr")
        inputs = [rng.normal(size=(3, 8, 8)).tolist() for _ in range(4)]
        want_old = _baseline_bytes(path_old, inputs)
        want_new = _baseline_bytes(path_new, inputs)

        with ReplicaPool(path_old, replicas=2, start_method="fork",
                         max_delay_ms=1.0, cache_entries=0) as pool:
            stop = threading.Event()
            errors = []
            served = []

            def client(i):
                lap = 0
                while not stop.is_set() or lap == 0:
                    which = (i + lap) % len(inputs)
                    try:
                        body = pool.predict_json(
                            {"input": inputs[which]})
                        served.append((which, response_bytes(body)))
                    except Exception as error:   # noqa: BLE001
                        errors.append(error)
                    lap += 1

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(4)]
            for t in threads:
                t.start()
            time.sleep(0.2)
            swapped = pool.reload(path_new)
            stop.set()
            for t in threads:
                t.join()

            assert swapped["status"] == "ok"
            assert swapped["generation"] == 1
            assert pool.generation == 1
            assert not errors, \
                f"requests dropped during the swap: {errors[:3]}"
            assert served, "no traffic flowed during the swap"
            for which, got in served:
                assert got in (want_old[which], want_new[which]), \
                    "a mid-swap response matches neither checkpoint"

            # after the swap, answers come from the new checkpoint only
            for x, reference in zip(inputs, want_new):
                assert response_bytes(
                    pool.predict_json({"input": x})) == reference

            # exactly one segment lives: the old one was unlinked
            segments = glob.glob("/dev/shm/*reproshm*")
            assert len(segments) == 1, segments

            stats = pool.stats()
            assert stats["requests"] == len(served) + len(inputs)
            assert stats["errors"] == 0
            assert stats["router"]["hits"] + stats["router"]["misses"] \
                == stats["requests"]

        assert not glob.glob("/dev/shm/*reproshm*")
