"""``GET /metrics``: Prometheus exposition, pooled merge, traced serving.

The pooled exposition is literally ``merge(parent, *replica snapshots)``
with disjoint names for router- and replica-level counters, so the
acceptance identity is ``pooled counter == sum over replica snapshots``
for every replica-level family.  Tracing a served request must not move
one bit of the logits (the SR draws are keyed by content hash; spans
never touch a PRNG).
"""

import json
import threading
import urllib.request

import pytest

from repro.obs import tracing
from repro.serve import InferenceSession, ReplicaPool, ServerApp, make_server
from repro.serve.pool import response_bytes

CONFIG_KEYS = ["rn_e6m5", "sr_r13", "sr_r4", "sr_r9"]


def _app(checkpoint):
    return ServerApp(InferenceSession.from_checkpoint(checkpoint),
                     max_batch_size=4, max_delay_ms=1.0, cache_entries=16)


def _parse_samples(text):
    """Prometheus text -> {sample key: float} (TYPE comments dropped)."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, value = line.rsplit(" ", 1)
        samples[key] = float(value)
    return samples


class TestSingleServerMetrics:
    def test_metrics_text_reflects_traffic(self, serve_checkpoint, rng):
        app = _app(serve_checkpoint("sr_r9"))
        try:
            x = rng.normal(size=(3, 8, 8)).tolist()
            app.predict_json({"input": x})
            app.predict_json({"input": x})   # cache hit
            samples = _parse_samples(app.metrics_text())
            assert samples["requests_total"] == 2
            assert samples["cache_hits_total"] == 1
            assert samples["cache_misses_total"] == 1
            assert samples["batcher_samples_total"] == 1
            assert samples["request_latency_ms_count"] == 2
            gemm_keys = [k for k in samples
                         if k.startswith("gemm_calls_total{")]
            assert gemm_keys, "session GEMM counters missing"
            assert sum(samples[k] for k in gemm_keys) == \
                app.session.gemm_calls
        finally:
            app.close()

    def test_stats_agrees_with_metrics(self, serve_checkpoint, rng):
        app = _app(serve_checkpoint("sr_r9"))
        try:
            for _ in range(3):
                app.predict_json(
                    {"input": rng.normal(size=(3, 8, 8)).tolist()})
            stats = app.stats()
            samples = _parse_samples(app.metrics_text())
            assert stats["requests"] == samples["requests_total"]
            assert stats["cache"]["hits"] == samples["cache_hits_total"]
            assert stats["batcher"]["batches"] == \
                samples["batcher_batches_total"]
            assert stats["latency_ms"]["count"] == \
                samples["request_latency_ms_count"]
        finally:
            app.close()

    def test_http_metrics_endpoint(self, serve_checkpoint, rng):
        app = _app(serve_checkpoint("sr_r9"))
        server = make_server(app, port=0)
        url = "http://127.0.0.1:%d" % server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            payload = json.dumps(
                {"input": rng.normal(size=(3, 8, 8)).tolist()}).encode()
            request = urllib.request.Request(
                url + "/predict", data=payload,
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=30) as response:
                assert response.status == 200
            with urllib.request.urlopen(url + "/metrics",
                                        timeout=30) as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith(
                    "text/plain")
                text = response.read().decode()
            samples = _parse_samples(text)
            assert samples["requests_total"] == 1
            assert "# TYPE requests_total counter" in text
        finally:
            server.shutdown()
            server.server_close()
            app.close()


class TestPooledMetrics:
    def test_pooled_counters_equal_replica_sum(self, serve_checkpoint,
                                               rng):
        path = serve_checkpoint("sr_r9")
        with ReplicaPool(path, replicas=2, start_method="fork",
                         max_delay_ms=1.0) as pool:
            inputs = [rng.normal(size=(3, 8, 8)).tolist()
                      for _ in range(4)]
            for x in inputs:
                pool.predict_json({"input": x})
            pool.predict_json({"input": inputs[0]})   # a cache hit

            replica_snaps = [s for s in pool.replica_metrics()
                             if s is not None]
            assert len(replica_snaps) == 2
            pooled = pool.metrics_snapshot()
            for family in ("requests_total", "cache_hits_total",
                           "cache_misses_total", "batcher_samples_total"):
                want = sum(s["counters"].get(family, 0)
                           for s in replica_snaps)
                assert pooled["counters"].get(family, 0) == want, family
            # replica-level GEMM counters surface in the pooled view
            gemm_total = sum(
                value for s in replica_snaps
                for key, value in s["counters"].items()
                if key.startswith("gemm_calls_total"))
            assert gemm_total > 0
            assert sum(value for key, value in pooled["counters"].items()
                       if key.startswith("gemm_calls_total")) == gemm_total
            # router-side counters are disjoint from replica families
            assert pooled["counters"]["router_requests_total"] == 5
            assert pooled["counters"]["router_cache_hits_total"] == 1
            samples = _parse_samples(pool.metrics_text())
            assert samples["router_requests_total"] == 5
            assert samples["requests_total"] == \
                pooled["counters"]["requests_total"]


class TestTracedServingBitwise:
    @pytest.mark.parametrize("config_key", CONFIG_KEYS)
    def test_traced_request_is_bitwise_identical(self, serve_checkpoint,
                                                 rng, config_key):
        path = serve_checkpoint(config_key)
        inputs = [rng.normal(size=(3, 8, 8)).tolist() for _ in range(2)]

        def serve_all():
            app = _app(path)
            try:
                return [response_bytes(app.predict_json({"input": x}))
                        for x in inputs]
            finally:
                app.close()

        plain = serve_all()
        with tracing() as rec:
            traced = serve_all()
        assert traced == plain, \
            f"tracing moved served bits under {config_key}"
        names = {e["name"] for e in rec.events()}
        assert {"serve/request", "serve/session", "serve/batch"} <= names
