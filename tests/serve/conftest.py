"""Shared fixtures for the sharded-serving suites.

The pool tests need checkpoints under several datapath configs (the
identity suite sweeps SR ``r``, RN, and the LFSR stream).  Weights are
trained **once** in FP64 — the datapath config only changes the sidecar,
not the state — so the factory trains on first use and then just
re-saves the same state per config.
"""

from dataclasses import replace

import pytest

from repro.data import loaders_for, make_cifar10_like
from repro.emu import GemmConfig
from repro.fp.formats import FP12_E6M5
from repro.models import SimpleCNN, simple_cnn_spec
from repro.nn import Trainer, save_checkpoint
from repro.prng.streams import LFSRStream

#: config key -> GemmConfig builder.  The identity suite parametrizes
#: over every key; the other suites pick one.
SERVE_CONFIGS = {
    "sr_r4": lambda: GemmConfig.sr(4, seed=3),
    "sr_r9": lambda: GemmConfig.sr(9, seed=3),
    "sr_r13": lambda: GemmConfig.sr(13, seed=3),
    "rn_e6m5": lambda: GemmConfig.rn(FP12_E6M5),
    "sr_r9_lfsr": lambda: replace(GemmConfig.sr(9, seed=3),
                                  stream=LFSRStream(seed=7)),
}


def _train_tiny_cnn():
    """A few FP64 optimization steps on the synthetic image set."""
    dataset = make_cifar10_like(64, 16, 8, seed=0)
    model = SimpleCNN(dataset.num_classes, 3, 4, seed=1)
    train_loader, _ = loaders_for(dataset, batch_size=32, seed=0)
    trainer = Trainer(model, lr=0.05, epochs=1, weight_decay=1e-4)
    for images, labels in train_loader():
        trainer.train_batch(images, labels)
    spec = simple_cnn_spec(num_classes=dataset.num_classes, in_channels=3,
                           width=4, image_size=8, seed=1)
    return model, spec


@pytest.fixture(scope="session")
def serve_checkpoint(tmp_path_factory):
    """Factory fixture: ``serve_checkpoint("sr_r9") -> Path``."""
    root = tmp_path_factory.mktemp("pool-ckpts")
    cache = {}

    def factory(config_key="sr_r9"):
        if "model" not in cache:
            cache["model"], cache["spec"] = _train_tiny_cnn()
        if config_key not in cache:
            path = root / f"{config_key}.npz"
            save_checkpoint(cache["model"], path,
                            model_spec=cache["spec"],
                            gemm_config=SERVE_CONFIGS[config_key]())
            cache[config_key] = path
        return cache[config_key]

    return factory
