"""Concurrency stress: interleaved hits, misses, and malformed requests.

Many client threads hammer one pool with a mix of a hot (cached) input,
unique (cache-miss) inputs, and malformed payloads.  Afterwards the
aggregated counters must be *coherent*: router hits + misses equals
served requests, the error count equals exactly the malformed count,
the pooled cache/batcher counters equal the sum over the live replica
counters (nothing retired — no reload ran), and no gauge went negative.
"""

import threading

import numpy as np
import pytest

from repro.serve import ReplicaPool
from repro.serve.pool import response_bytes

THREADS = 6
LAPS = 8


def _walk(node, path=""):
    if isinstance(node, dict):
        for key, value in node.items():
            yield from _walk(value, f"{path}.{key}")
    elif isinstance(node, (int, float)):
        yield path, node


class TestPoolStress:
    def test_mixed_load_counters_coherent(self, serve_checkpoint, rng):
        path = serve_checkpoint("sr_r9")
        hot = rng.normal(size=(3, 8, 8)).tolist()
        unique = [rng.normal(size=(3, 8, 8)).tolist()
                  for _ in range(THREADS)]
        malformed = [
            {"input": [[0.0]]},             # wrong shape
            {"wrong_field": 1},             # missing input
            "not even a dict",              # wrong type
        ]

        with ReplicaPool(path, replicas=2, start_method="fork",
                         max_delay_ms=1.0, cache_entries=64) as pool:
            ok = []
            bad = []
            failures = []
            hot_bytes = []

            def client(i):
                for lap in range(LAPS):
                    kind = (i + lap) % 3
                    try:
                        if kind == 0:
                            body = pool.predict_json({"input": hot})
                            hot_bytes.append(response_bytes(body))
                            ok.append(1)
                        elif kind == 1:
                            pool.predict_json({"input": unique[i]})
                            ok.append(1)
                        else:
                            payload = malformed[lap % len(malformed)]
                            try:
                                pool.predict_json(payload)
                                failures.append(
                                    f"malformed accepted: {payload!r}")
                            except (ValueError, TypeError):
                                # what the HTTP handler does on a 400
                                pool.record_error()
                                bad.append(1)
                    except Exception as error:   # noqa: BLE001
                        failures.append(repr(error))

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(THREADS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            assert not failures, failures[:5]
            # every hot response is byte-identical
            assert len(set(hot_bytes)) == 1

            stats = pool.stats()
            per_replica = pool.replica_stats()
            assert all(body is not None for body in per_replica)

            # router accounting: hits + misses == served requests
            assert stats["requests"] == len(ok)
            assert stats["router"]["hits"] + \
                stats["router"]["misses"] == stats["requests"]
            assert stats["errors"] == len(bad)
            assert stats["restarts"] == 0

            # pooled counters == sum of replica counters (no drains ran)
            assert stats["replica_requests"] == \
                sum(body["requests"] for body in per_replica)
            assert stats["replica_requests"] == len(ok)
            for field in ("hits", "misses", "evictions"):
                assert stats["cache"][field] == \
                    sum(body["cache"][field] for body in per_replica)
            for field in ("batches", "samples"):
                assert stats["batcher"][field] == \
                    sum(body["batcher"][field] for body in per_replica)
            assert stats["gemm_calls"] == \
                sum(body["gemm_calls"] for body in per_replica)

            # replica-side cache accounting covers every served request
            assert stats["cache"]["hits"] + stats["cache"]["misses"] \
                == stats["replica_requests"]
            assert stats["latency_ms"]["count"] == len(ok)

            # no negative gauges anywhere in the report
            for name, value in _walk(stats):
                assert value >= 0, f"negative gauge {name} = {value}"
