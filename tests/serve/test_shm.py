"""SharedCheckpoint: publish/attach round-trip, integrity, lifecycle.

The pool's zero-copy story rests on three properties checked here:
attached views are byte-identical to what the publisher laid out,
they are *read-only* (a replica cannot perturb the weights under its
siblings), and a session built from the segment really does serve from
the shared bytes (no hidden copy).  The digest check and the unlink
path guard the failure modes: a torn segment must be refused, and a
closed pool must leave nothing in ``/dev/shm``.
"""

import pickle

import numpy as np
import pytest

from repro.nn.checkpoint import load_checkpoint
from repro.serve import InferenceSession
from repro.serve.shm import NAME_PREFIX, SharedCheckpoint


class TestPublishAttach:
    def test_round_trip_bytes_and_metadata(self, serve_checkpoint):
        path = serve_checkpoint("sr_r9")
        ckpt = load_checkpoint(path)
        with SharedCheckpoint.publish(path) as shared:
            spec = pickle.loads(pickle.dumps(shared.spec))
            attached = SharedCheckpoint.attach(spec)
            assert attached.fingerprint == ckpt.fingerprint
            assert attached.manifest["frozen"] is True
            assert set(attached.state) == set(shared.state)
            for name, view in attached.state.items():
                mine = shared.state[name]
                assert view.dtype == mine.dtype
                assert view.shape == mine.shape
                assert view.tobytes() == mine.tobytes()
            assert attached.verify()
            attached.close()

    def test_views_are_read_only(self, serve_checkpoint):
        with SharedCheckpoint.publish(serve_checkpoint("sr_r9")) as shared:
            attached = SharedCheckpoint.attach(shared.spec)
            for view in attached.state.values():
                with pytest.raises(ValueError):
                    view[...] = 0.0
            attached.close()

    def test_weights_are_pre_frozen(self, serve_checkpoint):
        """Publisher-side freezing == what a local session would do.

        The RN cast to the multiplier format is deterministic, so the
        segment must hold exactly the bytes a ``from_checkpoint``
        session freezes for itself.
        """
        path = serve_checkpoint("sr_r9")
        session = InferenceSession.from_checkpoint(path)
        local = session.model.state_dict()
        with SharedCheckpoint.publish(path) as shared:
            for name, value in shared.state.items():
                assert value.tobytes() == \
                    np.ascontiguousarray(local[name]).tobytes(), name

    def test_session_shares_segment_memory(self, serve_checkpoint):
        """``from_shared`` rebinds parameters with zero copies."""
        with SharedCheckpoint.publish(serve_checkpoint("sr_r9")) as shared:
            attached = SharedCheckpoint.attach(shared.spec)
            session = InferenceSession.from_shared(attached)
            params = {name: parameter.data for name, parameter
                      in session.model.named_parameters()}
            shared_params = [
                name for name, view in attached.state.items()
                if name in params
                and np.shares_memory(params[name], view)
            ]
            assert shared_params, "no parameter aliases the segment"
            assert len(shared_params) == len(params), \
                "some parameters were copied out of the segment"
            attached.close()


class TestIntegrity:
    def test_digest_mismatch_refused(self, serve_checkpoint):
        with SharedCheckpoint.publish(serve_checkpoint("sr_r9")) as shared:
            spec = pickle.loads(pickle.dumps(shared.spec))
            spec["manifest"]["digest"] = "0" * 32
            with pytest.raises(ValueError, match="digest mismatch"):
                SharedCheckpoint.attach(spec)
            # verify=False attaches anyway (debugging escape hatch)
            attached = SharedCheckpoint.attach(spec, verify=False)
            assert not attached.verify()
            attached.close()


class TestLifecycle:
    def test_close_unlinks_segment(self, serve_checkpoint):
        shared = SharedCheckpoint.publish(serve_checkpoint("sr_r9"))
        name = shared.name
        assert name.startswith(NAME_PREFIX)
        spec = shared.spec
        shared.close()
        shared.close()  # idempotent
        with pytest.raises(FileNotFoundError):
            SharedCheckpoint.attach(spec)
        with pytest.raises(ValueError):
            shared.state

    def test_attacher_close_does_not_unlink(self, serve_checkpoint):
        with SharedCheckpoint.publish(serve_checkpoint("sr_r9")) as shared:
            first = SharedCheckpoint.attach(shared.spec)
            first.close()
            # the segment must survive an attacher's exit
            second = SharedCheckpoint.attach(shared.spec)
            assert second.verify()
            second.close()
