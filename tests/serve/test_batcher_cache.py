"""MicroBatcher coalescing and ResponseCache behavior."""

import threading

import numpy as np
import pytest

from repro.emu import GemmConfig
from repro.models import SimpleCNN
from repro.serve import InferenceSession, MicroBatcher, ResponseCache


@pytest.fixture
def session():
    return InferenceSession(SimpleCNN(4, 3, 4, seed=1),
                            GemmConfig.sr(9, seed=3))


class TestMicroBatcher:
    def test_single_request(self, session, rng):
        batcher = MicroBatcher(session, max_batch_size=4).start()
        x = rng.normal(size=(3, 8, 8))
        try:
            assert np.array_equal(batcher.submit(x), session.predict(x))
        finally:
            batcher.close()
        stats = batcher.stats()
        assert (stats.batches, stats.samples) == (1, 1)

    def test_concurrent_requests_coalesce(self, session, rng):
        batcher = MicroBatcher(session, max_batch_size=4,
                               max_delay_ms=200.0).start()
        xs = [rng.normal(size=(3, 8, 8)) for _ in range(8)]
        results = [None] * 8

        def worker(i):
            results[i] = batcher.submit(xs[i])

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        batcher.close()
        for i, x in enumerate(xs):
            assert np.array_equal(results[i], session.predict(x)), \
                f"request {i} depended on its batch"
        stats = batcher.stats()
        assert stats.samples == 8
        assert stats.batches < 8, "nothing coalesced despite 200ms window"
        assert stats.max_batch <= 4

    def test_exception_propagates(self, session):
        batcher = MicroBatcher(session, max_batch_size=2).start()
        try:
            with pytest.raises(ValueError):
                batcher.submit(np.ones((1, 2, 3, 4, 5)))  # bad rank
        finally:
            batcher.close()

    def test_closed_batcher_rejects(self, session):
        batcher = MicroBatcher(session).start()
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(np.zeros((3, 8, 8)))

    def test_bad_batch_size(self, session):
        with pytest.raises(ValueError):
            MicroBatcher(session, max_batch_size=0)


class TestResponseCache:
    def test_miss_then_hit(self):
        cache = ResponseCache(4)
        assert cache.get("k") is None
        cache.put("k", np.arange(3.0))
        assert np.array_equal(cache.get("k"), np.arange(3.0))
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)

    def test_returns_copies(self):
        cache = ResponseCache(4)
        cache.put("k", np.zeros(3))
        first = cache.get("k")
        first[...] = 99.0
        assert np.array_equal(cache.get("k"), np.zeros(3))

    def test_lru_eviction(self):
        cache = ResponseCache(2)
        cache.put("a", np.zeros(1))
        cache.put("b", np.ones(1))
        cache.get("a")                      # refresh a; b becomes LRU
        cache.put("c", np.full(1, 2.0))
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.stats().evictions == 1

    def test_zero_entries_disables(self):
        cache = ResponseCache(0)
        cache.put("k", np.zeros(1))
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_hit_rate(self):
        cache = ResponseCache(4)
        cache.put("k", np.zeros(1))
        cache.get("k")
        cache.get("miss")
        assert cache.stats().hit_rate == 0.5

    def test_threaded_access(self):
        cache = ResponseCache(64)
        errors = []

        def worker(tid):
            try:
                for i in range(200):
                    key = f"{tid}-{i % 8}"
                    cache.put(key, np.full(2, float(i)))
                    value = cache.get(key)
                    assert value is None or value.shape == (2,)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ResponseCache(-1)
