"""Cross-replica bit-identity — the acceptance gate of the sharded tier.

For every serving config (SR r in {4, 9, 13}, RN E6M5, SR r=9 over the
hardware-faithful LFSR stream) and every input: the routed pool answer,
the answer from *each individual replica*, and the single-process
``ServerApp`` baseline must be **byte-identical** (compared through
:func:`repro.serve.pool.response_bytes`, i.e. the float64 logit bytes
after the JSON round trip).  Which replica answers is unobservable —
sharding, like worker count and micro-batching, is invisible in the
logits.
"""

import json
import threading
import urllib.request

import pytest

from repro.serve import InferenceSession, ReplicaPool, ServerApp, make_server
from repro.serve.pool import response_bytes

#: every key in ``conftest.SERVE_CONFIGS`` (an unknown key fails the
#: factory loudly, so the sweep cannot silently narrow)
CONFIG_KEYS = ["rn_e6m5", "sr_r13", "sr_r4", "sr_r9", "sr_r9_lfsr"]

REPLICAS = 2


def _baseline_bytes(checkpoint, inputs):
    """Single-process reference responses, one per input."""
    app = ServerApp(InferenceSession.from_checkpoint(checkpoint),
                    max_batch_size=4, max_delay_ms=1.0, cache_entries=16)
    try:
        return [response_bytes(app.predict_json({"input": x}))
                for x in inputs]
    finally:
        app.close()


def _inputs(rng, n=2):
    return [rng.normal(size=(3, 8, 8)).tolist() for _ in range(n)]


@pytest.mark.parametrize("config_key", CONFIG_KEYS)
def test_every_replica_matches_single_process(serve_checkpoint, rng,
                                              config_key):
    path = serve_checkpoint(config_key)
    inputs = _inputs(rng)
    want = _baseline_bytes(path, inputs)
    with ReplicaPool(path, replicas=REPLICAS, start_method="fork",
                     max_delay_ms=1.0) as pool:
        for x, reference in zip(inputs, want):
            routed = pool.predict_json({"input": x})
            assert response_bytes(routed) == reference, \
                f"routed answer diverged under {config_key}"
            for index in range(REPLICAS):
                body = pool.predict_on(index, {"input": x})
                assert response_bytes(body) == reference, \
                    f"replica {index} diverged under {config_key}"
                assert body["key"] == routed["key"]


def test_spawn_start_method_identical(serve_checkpoint, rng):
    """One spawn-mode pool: fresh interpreters, same bytes."""
    path = serve_checkpoint("sr_r9")
    inputs = _inputs(rng, n=1)
    want = _baseline_bytes(path, inputs)
    with ReplicaPool(path, replicas=2, start_method="spawn",
                     max_delay_ms=1.0) as pool:
        for x, reference in zip(inputs, want):
            assert response_bytes(pool.predict_json({"input": x})) \
                == reference
            for index in range(2):
                assert response_bytes(
                    pool.predict_on(index, {"input": x})) == reference


def _post(url, payload, timeout=60):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _get(url, timeout=30):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def test_http_pool_end_to_end(serve_checkpoint, rng):
    """Pool behind the HTTP server: concurrent clients, then a live
    drain-and-swap ``/reload`` onto a *different* datapath config."""
    path_r9 = serve_checkpoint("sr_r9")
    path_r13 = serve_checkpoint("sr_r13")
    x = rng.normal(size=(3, 8, 8)).tolist()
    want_r9 = _baseline_bytes(path_r9, [x])[0]
    want_r13 = _baseline_bytes(path_r13, [x])[0]

    pool = ReplicaPool(path_r9, replicas=2, start_method="fork",
                       max_delay_ms=1.0)
    server = make_server(pool, port=0)
    url = "http://127.0.0.1:%d" % server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        results = {}

        def client(i):
            results[i] = _post(url + "/predict", {"input": x})

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(status == 200 for status, _ in results.values())
        for _, body in results.values():
            assert response_bytes(body) == want_r9

        status, health = _get(url + "/healthz")
        assert status == 200 and health["status"] == "ok"
        assert len(health["replicas"]) == 2

        # live checkpoint swap to the r=13 datapath
        status, swapped = _post(url + "/reload",
                                {"checkpoint": str(path_r13)})
        assert status == 200 and swapped["status"] == "ok"
        assert swapped["generation"] == 1

        status, body = _post(url + "/predict", {"input": x})
        assert status == 200
        assert response_bytes(body) == want_r13, \
            "post-swap answers do not match the new checkpoint's baseline"
        status, health = _get(url + "/healthz")
        assert health["status"] == "ok"
    finally:
        server.shutdown()
        server.server_close()
        pool.close()
