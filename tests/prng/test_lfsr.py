"""Tests for the Galois LFSR models."""

import numpy as np
import pytest

from repro.prng.lfsr import GALOIS_TAPS, MAXIMAL_TAPS, GaloisLFSR, VectorLFSR, galois_mask


class TestGaloisMask:
    def test_mask_sets_tap_bits(self):
        assert galois_mask(4, (4, 3)) == 0b1100
        assert galois_mask(13) == galois_mask(13, MAXIMAL_TAPS[13])

    def test_rejects_out_of_range_taps(self):
        with pytest.raises(ValueError):
            galois_mask(4, (5,))
        with pytest.raises(ValueError):
            galois_mask(4, (0,))

    def test_unknown_width_raises(self):
        with pytest.raises(ValueError):
            galois_mask(40)


class TestMaximalPeriod:
    @pytest.mark.parametrize("width", [2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14])
    def test_full_period(self, width):
        lfsr = GaloisLFSR(width)
        assert lfsr.period() == (1 << width) - 1

    def test_paper_widths_are_available(self):
        # r values used in the paper: 4, 7, 9, 11, 13, 14, 27
        for width in (4, 7, 9, 11, 13, 14, 27):
            assert width in GALOIS_TAPS

    def test_visits_every_nonzero_state(self):
        width = 6
        lfsr = GaloisLFSR(width)
        states = set(lfsr.sequence((1 << width) - 1))
        assert len(states) == (1 << width) - 1
        assert 0 not in states


class TestStateHandling:
    def test_zero_seed_remapped(self):
        lfsr = GaloisLFSR(8, seed=0)
        assert lfsr.state == 0xFF

    def test_seed_masked_to_width(self):
        lfsr = GaloisLFSR(4, seed=0x1F)
        assert lfsr.state == 0xF

    def test_states_stay_in_range(self):
        lfsr = GaloisLFSR(9, seed=123)
        for value in lfsr.sequence(2000):
            assert 0 < value < (1 << 9)

    def test_deterministic_given_seed(self):
        a = GaloisLFSR(13, seed=77).sequence(50)
        b = GaloisLFSR(13, seed=77).sequence(50)
        assert a == b


class TestUniformity:
    def test_draws_roughly_uniform(self):
        lfsr = GaloisLFSR(9)
        draws = np.array(lfsr.sequence((1 << 9) - 1))
        # Over the full period each nonzero value appears exactly once.
        assert draws.mean() == pytest.approx((1 << 9) / 2, rel=0.01)


class TestVectorLFSR:
    def test_matches_scalar_trajectories(self):
        width = 9
        vec = VectorLFSR(width, lanes=8, seed=3)
        initial = vec.states.copy()
        scalars = [GaloisLFSR(width, seed=int(s)) for s in initial]
        for _ in range(100):
            vec_states = vec.step()
            for lane, scalar in enumerate(scalars):
                assert scalar.step() == int(vec_states[lane])

    def test_draw_shape_and_range(self):
        vec = VectorLFSR(13, lanes=16, seed=1)
        draws = vec.draw((7, 5))
        assert draws.shape == (7, 5)
        assert np.all(draws > 0)
        assert np.all(draws < (1 << 13))

    def test_no_zero_states_after_init(self):
        vec = VectorLFSR(4, lanes=1000, seed=9)
        assert np.all(vec.states != 0)

    def test_unknown_width_raises(self):
        with pytest.raises(ValueError):
            VectorLFSR(64, lanes=4)


class TestJump:
    """GF(2) matrix-exponentiation leapfrog vs cycle-by-cycle stepping."""

    @pytest.mark.parametrize("width", [4, 9, 13, 27, 32])
    @pytest.mark.parametrize("steps", [1, 2, 7, 1000])
    def test_jump_equals_stepping(self, width, steps):
        stepped = VectorLFSR(width, lanes=8, seed=3)
        jumped = VectorLFSR(width, lanes=8, seed=3)
        for _ in range(steps):
            stepped.step()
        jumped.jump(steps)
        assert np.array_equal(stepped.states, jumped.states)

    def test_large_jump_stays_nonzero(self):
        vec = VectorLFSR(9, lanes=64, seed=5)
        vec.jump((1 << 40) + 12345)
        assert np.all(vec.states != 0)
        assert np.all(vec.states < (1 << 9))

    def test_jump_composes(self):
        a = VectorLFSR(13, lanes=8, seed=2)
        b = VectorLFSR(13, lanes=8, seed=2)
        a.jump(300)
        a.jump(53)
        b.jump(353)
        assert np.array_equal(a.states, b.states)

    def test_nonpositive_jump_is_noop(self):
        vec = VectorLFSR(9, lanes=4, seed=1)
        before = vec.states.copy()
        vec.jump(0)
        assert np.array_equal(vec.states, before)
