"""Tests for the random-bit stream sources."""

import numpy as np

from repro.prng.streams import LFSRStream, SoftwareStream


class TestSoftwareStream:
    def test_shape_and_range(self):
        stream = SoftwareStream(seed=1)
        draws = stream.integers(9, (100, 3))
        assert draws.shape == (100, 3)
        assert draws.min() >= 0
        assert draws.max() < (1 << 9)

    def test_deterministic_per_seed(self):
        a = SoftwareStream(seed=5).integers(7, (50,))
        b = SoftwareStream(seed=5).integers(7, (50,))
        assert np.array_equal(a, b)

    def test_roughly_uniform(self):
        draws = SoftwareStream(seed=2).integers(13, (200000,))
        assert abs(draws.mean() / (1 << 13) - 0.5) < 0.01


class TestLFSRStream:
    def test_shape_and_range(self):
        stream = LFSRStream(lanes=64, seed=1)
        draws = stream.integers(13, (37, 5))
        assert draws.shape == (37, 5)
        assert draws.min() > 0  # LFSR never emits zero
        assert draws.max() < (1 << 13)

    def test_banks_cached_per_width(self):
        stream = LFSRStream(lanes=16)
        stream.integers(9, (4,))
        stream.integers(13, (4,))
        assert set(stream._banks) == {9, 13}

    def test_sequence_advances(self):
        stream = LFSRStream(lanes=8, seed=4)
        first = stream.integers(9, (8,))
        second = stream.integers(9, (8,))
        assert not np.array_equal(first, second)
