"""Tests for the random-bit stream sources."""

import pickle

import numpy as np
import pytest

from repro.prng.streams import (
    LFSRStream,
    SoftwareStream,
    as_key_path,
)


class TestSoftwareStream:
    def test_shape_and_range(self):
        stream = SoftwareStream(seed=1)
        draws = stream.integers(9, (100, 3))
        assert draws.shape == (100, 3)
        assert draws.min() >= 0
        assert draws.max() < (1 << 9)

    def test_deterministic_per_seed(self):
        a = SoftwareStream(seed=5).integers(7, (50,))
        b = SoftwareStream(seed=5).integers(7, (50,))
        assert np.array_equal(a, b)

    def test_roughly_uniform(self):
        draws = SoftwareStream(seed=2).integers(13, (200000,))
        assert abs(draws.mean() / (1 << 13) - 0.5) < 0.01


class TestLFSRStream:
    def test_shape_and_range(self):
        stream = LFSRStream(lanes=64, seed=1)
        draws = stream.integers(13, (37, 5))
        assert draws.shape == (37, 5)
        assert draws.min() > 0  # LFSR never emits zero
        assert draws.max() < (1 << 13)

    def test_banks_cached_per_width(self):
        stream = LFSRStream(lanes=16)
        stream.integers(9, (4,))
        stream.integers(13, (4,))
        assert set(stream._banks) == {9, 13}

    def test_sequence_advances(self):
        stream = LFSRStream(lanes=8, seed=4)
        first = stream.integers(9, (8,))
        second = stream.integers(9, (8,))
        assert not np.array_equal(first, second)


class TestKeyPath:
    def test_flattening(self):
        assert as_key_path(3) == (3,)
        assert as_key_path((1, (2, 3), [4])) == (1, 2, 3, 4)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            as_key_path(-1)

    def test_spawn_rejects_empty_key(self):
        with pytest.raises(ValueError):
            SoftwareStream(1).spawn(())
        with pytest.raises(ValueError):
            LFSRStream(lanes=8).spawn([])


class TestSpawn:
    """Substream derivation: pure in (root identity, key), never in the
    parent's draw position — the parallel executor's foundation."""

    def test_software_child_ignores_parent_position(self):
        parent = SoftwareStream(5)
        before = parent.spawn(3).integers(9, (16,))
        parent.integers(9, (100,))  # advance the parent
        after = parent.spawn(3).integers(9, (16,))
        assert np.array_equal(before, after)

    def test_software_children_differ_by_key(self):
        parent = SoftwareStream(5)
        a = parent.spawn(3).integers(9, (64,))
        b = parent.spawn(4).integers(9, (64,))
        c = parent.integers(9, (64,))
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_software_nested_spawn_is_path_addressed(self):
        parent = SoftwareStream(7)
        nested = parent.spawn(1).spawn(2).integers(9, (32,))
        direct = parent.spawn((1, 2)).integers(9, (32,))
        assert np.array_equal(nested, direct)
        sibling = parent.spawn((2, 1)).integers(9, (32,))
        assert not np.array_equal(nested, sibling)

    def test_software_spawn_survives_pickle(self):
        parent = SoftwareStream(5)
        clone = pickle.loads(pickle.dumps(parent))
        assert np.array_equal(parent.spawn((2, 9)).integers(9, (16,)),
                              clone.spawn((2, 9)).integers(9, (16,)))

    def test_lfsr_child_is_reseeded_offset_variant(self):
        parent = LFSRStream(lanes=8, seed=4)
        child = parent.spawn(3)
        assert child.offset > 0
        assert child.spawn_path == (3,)
        # child banks: key-derived lane seeds, jumped by the key-derived
        # offset (offsets alone would alias modulo the 2^r - 1 period)
        from repro.prng.lfsr import VectorLFSR
        from repro.prng.streams import _fold_path

        bank = VectorLFSR(9, 8, seed=(4 + 9) ^ _fold_path((3,)))
        bank.jump(child.offset)
        want = bank.draw((16,))
        assert np.array_equal(child.integers(9, (16,)), want)

    def test_lfsr_children_distinct_despite_period_aliasing(self):
        """Offsets alias modulo 2^r - 1; the re-seeded lane states must
        keep substreams distinct even when offsets collide mod period."""
        parent = LFSRStream(lanes=8, seed=4)
        period = (1 << 9) - 1
        keys = range(120)
        children = {key: parent.spawn(key) for key in keys}
        draws = {key: child.integers(9, (32,))
                 for key, child in children.items()}
        collisions = [
            (i, j)
            for i in keys for j in keys if i < j
            and children[i].offset % period == children[j].offset % period
        ]
        # with 120 keys over 511 phases a mod-period collision is
        # (overwhelmingly) expected
        assert collisions, "test needs keys that alias mod the period"
        for i, j in collisions:
            assert not np.array_equal(draws[i], draws[j])

    def test_lfsr_children_deterministic_and_distinct(self):
        parent = LFSRStream(lanes=8, seed=4)
        a1 = parent.spawn((1, 2)).integers(9, (32,))
        a2 = LFSRStream(lanes=8, seed=4).spawn((1, 2)).integers(9, (32,))
        b = parent.spawn((1, 3)).integers(9, (32,))
        assert np.array_equal(a1, a2)
        assert not np.array_equal(a1, b)
        assert not np.array_equal(a1, parent.integers(9, (32,)))
