"""GEMM emulation: correctness against the scalar MAC, ablations, stats."""

import numpy as np
import pytest

from repro.emu.config import GemmConfig
from repro.emu.gemm import QuantizedGemm, cast_inputs, dot, matmul, sum_reduce
from repro.fp.formats import FP8_E5M2, FP12_E6M5, FP16
from repro.fp.quantize import quantize
from repro.prng.streams import LFSRStream
from repro.rtl.adder_rn import FPAdderRN
from repro.rtl.mac import MACConfig, MACUnit


class TestBaseline:
    def test_fp32_baseline_is_plain_matmul(self, rng):
        a = rng.normal(size=(5, 7))
        b = rng.normal(size=(7, 3))
        out = matmul(a, b, GemmConfig.fp32_baseline())
        assert np.allclose(out, a @ b, rtol=0, atol=0)

    def test_shape_validation(self, rng):
        cfg = GemmConfig.fp32_baseline()
        with pytest.raises(ValueError):
            matmul(rng.normal(size=(3, 4)), rng.normal(size=(5, 2)), cfg)
        with pytest.raises(ValueError):
            matmul(rng.normal(size=4), rng.normal(size=(4, 2)), cfg)


class TestAgainstScalarMAC:
    """The vectorized emulation must equal the cycle-level MAC unit."""

    def test_rn_matches_mac_unit(self, rng):
        cfg = GemmConfig.rn(FP12_E6M5)
        a = rng.normal(size=(3, 20))
        b = rng.normal(size=(20, 2))
        out = matmul(a, b, cfg)
        aq, bq = cast_inputs(a, b, cfg)
        adder = FPAdderRN(FP12_E6M5)
        for i in range(3):
            for j in range(2):
                acc = 0.0
                for k in range(20):
                    acc = adder.add(acc, float(aq[i, k] * bq[k, j])).value
                assert acc == out[i, j]

    def test_input_cast_is_rn_to_fp8(self, rng):
        cfg = GemmConfig.sr(9)
        a = rng.normal(size=(4, 4))
        aq, _ = cast_inputs(a, a, cfg)
        assert np.array_equal(aq, quantize(a, FP8_E5M2, "nearest"))

    def test_cast_false_skips_quantization(self, rng):
        cfg = GemmConfig.rn(FP12_E6M5)
        a = quantize(rng.normal(size=(2, 8)), FP8_E5M2)
        b = quantize(rng.normal(size=(8, 2)), FP8_E5M2)
        assert np.array_equal(matmul(a, b, cfg),
                              matmul(a, b, cfg, cast=False))


class TestSRBehavior:
    def test_deterministic_per_seed(self, rng):
        a = rng.normal(size=(6, 30))
        b = rng.normal(size=(30, 4))
        out1 = matmul(a, b, GemmConfig.sr(9, seed=42))
        out2 = matmul(a, b, GemmConfig.sr(9, seed=42))
        assert np.array_equal(out1, out2)

    def test_different_seeds_differ(self, rng):
        a = rng.normal(size=(6, 30))
        b = rng.normal(size=(30, 4))
        out1 = matmul(a, b, GemmConfig.sr(9, seed=1))
        out2 = matmul(a, b, GemmConfig.sr(9, seed=2))
        assert not np.array_equal(out1, out2)

    def test_sr_unbiased_across_many_draws(self, rng):
        """Mean of SR GEMMs approaches the cast-exact product."""
        a = rng.normal(size=(2, 24))
        b = rng.normal(size=(24, 2))
        cfg0 = GemmConfig.sr(13)
        aq, bq = cast_inputs(a, b, cfg0)
        exact = aq @ bq
        acc = np.zeros_like(exact)
        trials = 300
        for seed in range(trials):
            acc += matmul(a, b, GemmConfig.sr(13, seed=seed))
        mean = acc / trials
        assert np.allclose(mean, exact, atol=0.02 * np.abs(exact).max() + 1e-3)

    def test_lfsr_stream_supported(self, rng):
        cfg = GemmConfig.sr(9)
        cfg.stream = LFSRStream(lanes=128, seed=5)
        out = matmul(rng.normal(size=(4, 16)), rng.normal(size=(16, 4)), cfg)
        assert np.all(np.isfinite(out))

    def test_results_on_accumulator_grid(self, rng):
        cfg = GemmConfig.sr(9, subnormals=False)
        out = matmul(rng.normal(size=(5, 12)), rng.normal(size=(12, 5)), cfg)
        regrid = quantize(out, cfg.acc_format, "toward_zero")
        assert np.array_equal(out, regrid)


class TestPerStepAblation:
    def test_per_step_false_rounds_once(self, rng):
        a = rng.normal(size=(3, 50))
        b = rng.normal(size=(50, 3))
        cfg = GemmConfig.rn(FP12_E6M5)
        cfg.per_step = False
        out = matmul(a, b, cfg)
        aq, bq = cast_inputs(a, b, cfg)
        expected = quantize(aq @ bq, cfg.acc_format, "nearest")
        assert np.array_equal(out, expected)

    def test_swamping_visible_only_per_step(self, rng):
        """Per-step RN accumulation loses small terms; one-shot doesn't."""
        k = 4096
        a = np.full((1, k), 1.0)
        b = np.full((k, 1), 1.0 / 64)  # representable in FP8
        per_step = GemmConfig.rn(FP12_E6M5)
        one_shot = GemmConfig.rn(FP12_E6M5)
        one_shot.per_step = False
        exact = k / 64
        got_step = matmul(a, b, per_step)[0, 0]
        got_shot = matmul(a, b, one_shot)[0, 0]
        assert abs(got_shot - exact) / exact < 0.02
        assert got_step < 0.8 * exact  # stagnated well below the true sum


class TestOverflowAndStats:
    def test_overflow_to_inf_detected(self):
        cfg = GemmConfig.rn(FP12_E6M5)
        gemm = QuantizedGemm(cfg)
        big = np.full((1, 64), 3e4)
        out = gemm(big, big.T)
        assert np.isinf(out).any()
        assert gemm.overflow_count == 1
        gemm.reset_stats()
        assert gemm.overflow_count == 0

    def test_saturate_avoids_inf(self):
        cfg = GemmConfig.rn(FP12_E6M5)
        cfg.saturate = True
        big = np.full((1, 64), 3e4)
        out = matmul(big, big.T, cfg)
        assert np.all(np.isfinite(out))

    def test_call_count(self, rng):
        gemm = QuantizedGemm(GemmConfig.fp32_baseline())
        gemm(rng.normal(size=(2, 2)), rng.normal(size=(2, 2)))
        gemm(rng.normal(size=(2, 2)), rng.normal(size=(2, 2)))
        assert gemm.call_count == 2


class TestHelpers:
    def test_dot_matches_matmul(self, rng):
        cfg = GemmConfig.sr(9, seed=0)
        x = rng.normal(size=16)
        w = rng.normal(size=16)
        cfg2 = GemmConfig.sr(9, seed=0)
        expected = matmul(x.reshape(1, -1), w.reshape(-1, 1), cfg2)[0, 0]
        assert dot(x, w, cfg) == expected

    def test_sum_reduce_exact_for_baseline(self, rng):
        values = rng.normal(size=(5, 9))
        out = sum_reduce(values, GemmConfig.fp32_baseline(), axis=1)
        assert np.allclose(out, values.sum(axis=1))

    def test_sum_reduce_quantized_on_grid(self, rng):
        cfg = GemmConfig.rn(FP16)
        values = rng.normal(size=(40, 4))
        out = sum_reduce(values, cfg, axis=0)
        assert np.array_equal(out, quantize(out, FP16, "toward_zero"))

    def test_sum_reduce_one_shot(self, rng):
        cfg = GemmConfig.rn(FP16)
        cfg.per_step = False
        values = rng.normal(size=(10, 3))
        out = sum_reduce(values, cfg, axis=0)
        expected = quantize(values.sum(axis=0), FP16, "nearest")
        assert np.array_equal(out, expected)


class TestConfigLabels:
    def test_labels(self):
        assert GemmConfig.fp32_baseline().label == "FP32 baseline"
        assert "SR" in GemmConfig.sr(13, subnormals=False).label
        assert "w/o sub" in GemmConfig.sr(13, subnormals=False).label
        assert GemmConfig.rn(FP16).label.startswith("RN")

    def test_paper_table3_config_factory(self):
        from repro.emu.config import paper_table3_config

        assert paper_table3_config("baseline") is None or \
            paper_table3_config("baseline").is_exact
        cfg = paper_table3_config("sr", rbits=13, subnormals=False)
        assert cfg.rounding == "stochastic" and cfg.rbits == 13
        with pytest.raises(ValueError):
            paper_table3_config("sr")
        with pytest.raises(ValueError):
            paper_table3_config("bogus")
