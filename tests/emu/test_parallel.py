"""Tiled-parallel executor: the bit-identity contract and conv streaming.

The load-bearing guarantee of :mod:`repro.emu.parallel`: for every
registered engine, the parallel GEMM output is **bit-identical across
worker counts, scheduling tile sizes and pool backends**, because each
``(batch, row-block)`` tile draws its SR bits from a key-derived
substream.  ``workers=1`` is the serial fallback running the same
substream schedule in-process.
"""

import numpy as np
import pytest

from repro.emu import GemmConfig, QuantizedGemm
from repro.emu.parallel import (
    BLOCK_ROWS,
    ParallelQuantizedGemm,
    TileScheduler,
    parallel_matmul_batched,
)
from repro.fp.formats import FP12_E6M5
from repro.fp.quantize import quantize
from repro.nn.functional import PatchRows, col2im, im2col
from repro.nn.layers import Conv2d
from repro.prng.streams import LFSRStream


def _operands(rng, batch=2, m=100, k=40, n=8):
    return rng.normal(size=(batch, m, k)), rng.normal(size=(batch, k, n))


def _run(a, b, *, workers, tile_rows, backend="thread",
         order="sequential", stream=None):
    config = GemmConfig.sr(9, seed=7, accum_order=order)
    if stream is not None:
        config.stream = stream
    scheduler = TileScheduler(workers=workers, tile_rows=tile_rows,
                              backend=backend)
    return parallel_matmul_batched(a, b, config, scheduler=scheduler)


class TestBitIdentity:
    """Same output for any workers / tile size / backend, per engine."""

    @pytest.mark.parametrize("order", ["sequential", "pairwise",
                                       "chunked(8)"])
    def test_workers_and_tile_sizes(self, rng, order):
        a, b = _operands(rng)
        reference = _run(a, b, workers=1, tile_rows=BLOCK_ROWS, order=order)
        for workers in (2, 4):
            for tile_rows in (BLOCK_ROWS, 3 * BLOCK_ROWS):
                got = _run(a, b, workers=workers, tile_rows=tile_rows,
                           order=order)
                assert np.array_equal(reference, got), \
                    f"{order} workers={workers} tile_rows={tile_rows}"

    def test_process_backend_matches_threads(self, rng):
        a, b = _operands(rng)
        want = _run(a, b, workers=1, tile_rows=BLOCK_ROWS)
        got = _run(a, b, workers=2, tile_rows=2 * BLOCK_ROWS,
                   backend="process")
        assert np.array_equal(want, got)

    def test_lfsr_stream_worker_invariant(self, rng):
        a, b = _operands(rng, batch=1, m=70, k=20, n=5)
        want = _run(a, b, workers=1, tile_rows=BLOCK_ROWS,
                    stream=LFSRStream(lanes=64, seed=5))
        got = _run(a, b, workers=3, tile_rows=BLOCK_ROWS,
                   stream=LFSRStream(lanes=64, seed=5))
        assert np.array_equal(want, got)

    def test_uneven_tail_block(self, rng):
        """M not a multiple of BLOCK_ROWS exercises the short last block."""
        a, b = _operands(rng, batch=1, m=BLOCK_ROWS + 7, k=16, n=4)
        want = _run(a, b, workers=1, tile_rows=BLOCK_ROWS)
        got = _run(a, b, workers=2, tile_rows=BLOCK_ROWS)
        assert np.array_equal(want, got)


class TestDeterminism:
    def test_same_seed_same_result(self, rng):
        a, b = _operands(rng)
        assert np.array_equal(_run(a, b, workers=2, tile_rows=64),
                              _run(a, b, workers=2, tile_rows=64))

    def test_successive_calls_draw_fresh_keys(self, rng):
        """Two calls on one config must not reuse SR randomness."""
        a, b = _operands(rng, batch=1)
        config = GemmConfig.sr(9, seed=7)
        scheduler = TileScheduler(workers=2, backend="thread")
        first = parallel_matmul_batched(a, b, config, scheduler=scheduler)
        second = parallel_matmul_batched(a, b, config, scheduler=scheduler)
        assert not np.array_equal(first, second)

    def test_results_on_accumulator_grid(self, rng):
        a, b = _operands(rng, batch=1)
        out = _run(a, b, workers=2, tile_rows=64)
        assert np.array_equal(out, quantize(out, FP12_E6M5, "toward_zero"))


class TestSemantics:
    def test_rn_matches_serial_engine(self, rng):
        """RN consumes no randomness, so blockwise == whole-matrix."""
        from repro.emu import matmul_batched

        a, b = _operands(rng)
        config = GemmConfig.rn(FP12_E6M5)
        scheduler = TileScheduler(workers=2, backend="thread")
        got = parallel_matmul_batched(a, b, config, scheduler=scheduler)
        want = matmul_batched(a, b, GemmConfig.rn(FP12_E6M5))
        assert np.array_equal(got, want)

    def test_exact_baseline_is_plain_matmul(self, rng):
        a, b = _operands(rng)
        config = GemmConfig.fp32_baseline()
        scheduler = TileScheduler(workers=2, backend="thread")
        got = parallel_matmul_batched(a, b, config, scheduler=scheduler)
        assert np.allclose(got, a @ b, rtol=0, atol=0)

    def test_round_once_ablation_worker_invariant(self, rng):
        a, b = _operands(rng, batch=1)
        outs = []
        for workers in (1, 3):
            config = GemmConfig.sr(9, seed=2)
            config.per_step = False
            scheduler = TileScheduler(workers=workers, backend="thread")
            outs.append(parallel_matmul_batched(a, b, config,
                                                scheduler=scheduler))
        assert np.array_equal(outs[0], outs[1])

    def test_shape_validation_and_empty(self, rng):
        scheduler = TileScheduler(workers=2, backend="thread")
        config = GemmConfig.sr(9, seed=1)
        with pytest.raises(ValueError):
            parallel_matmul_batched(rng.normal(size=(2, 3, 4)),
                                    rng.normal(size=(2, 5, 2)), config,
                                    scheduler=scheduler)
        out = parallel_matmul_batched(np.zeros((1, 0, 4)),
                                      np.zeros((1, 4, 3)), config,
                                      scheduler=scheduler)
        assert out.shape == (1, 0, 3)

    def test_scheduler_validation(self):
        with pytest.raises(ValueError):
            TileScheduler(backend="gpu")
        with pytest.raises(ValueError):
            TileScheduler(tile_rows=0)

    def test_quantized_gemm_protocol(self, rng):
        gemm = ParallelQuantizedGemm(GemmConfig.sr(9, seed=1), workers=2,
                                     backend="thread")
        out = gemm(rng.normal(size=(2, 40, 8)), rng.normal(size=(2, 8, 3)))
        assert out.shape == (2, 40, 3)
        assert gemm.call_count == 1
        with pytest.raises(ValueError):
            gemm(rng.normal(size=(2, 4, 8)), rng.normal(size=(8, 3)))

    def test_overflow_counted(self):
        gemm = ParallelQuantizedGemm(GemmConfig.sr(9, seed=7), workers=2,
                                     backend="thread")
        big = np.full((3, 64), 3e4)
        gemm(big, big.T)
        assert gemm.overflow_count == 1


class TestConvStreaming:
    """Tiled-im2col conv: forward and both backward GEMMs streamed."""

    def _layer(self, gemm, bias=True):
        return Conv2d(4, 6, 3, gemm=gemm, rng=np.random.default_rng(42),
                      bias=bias)

    def _input(self):
        return np.random.default_rng(1).normal(size=(3, 4, 9, 9))

    def test_rn_forward_matches_legacy(self):
        """RN: streamed row tiles equal the whole-matrix GEMM bitwise."""
        x = self._input()
        config = GemmConfig.rn(FP12_E6M5)
        legacy = self._layer(QuantizedGemm(config))
        tiled = self._layer(ParallelQuantizedGemm(config, workers=2,
                                                  backend="thread"))
        assert np.array_equal(legacy.forward(x), tiled.forward(x))
        assert tiled._cols is None  # column matrix never materialized

    def test_sr_fwd_bwd_worker_and_tile_invariant(self):
        x = self._input()

        def run(workers, tile_rows):
            gemm = ParallelQuantizedGemm(GemmConfig.sr(9, seed=3),
                                         workers=workers,
                                         tile_rows=tile_rows,
                                         backend="thread")
            layer = self._layer(gemm)
            out = layer.forward(x)
            grad_x = layer.backward(np.ones_like(out))
            return out, grad_x, layer.weight.grad, layer.bias.grad

        serial = run(1, BLOCK_ROWS)
        parallel = run(4, 3 * BLOCK_ROWS)
        for want, got in zip(serial, parallel):
            assert np.array_equal(want, got)

    def test_sr_backward_through_process_pool(self):
        x = self._input()

        def run(workers):
            gemm = ParallelQuantizedGemm(GemmConfig.sr(9, seed=3),
                                         workers=workers)
            layer = self._layer(gemm)
            out = layer.forward(x)
            return layer.backward(np.ones_like(out)), layer.weight.grad

        serial = run(1)
        pooled = run(2)
        for want, got in zip(serial, pooled):
            assert np.array_equal(want, got)

    def test_exact_streamed_matches_legacy_gradients(self):
        """FP32-baseline: streamed conv agrees with the legacy im2col
        path (up to float64 summation order in the weight gradient)."""
        x = self._input()
        config = GemmConfig.fp32_baseline()
        legacy = self._layer(QuantizedGemm(config))
        tiled = self._layer(ParallelQuantizedGemm(config, workers=2,
                                                  backend="thread"))
        out_l, out_t = legacy.forward(x), tiled.forward(x)
        assert np.allclose(out_l, out_t, atol=1e-12)
        grad = np.ones_like(out_l)
        gx_l, gx_t = legacy.backward(grad), tiled.backward(grad)
        assert np.allclose(gx_l, gx_t, atol=1e-10)
        assert np.allclose(legacy.weight.grad, tiled.weight.grad, atol=1e-9)
        assert np.allclose(legacy.bias.grad, tiled.bias.grad, atol=1e-10)

    def test_gemm_call_count(self):
        x = self._input()
        gemm = ParallelQuantizedGemm(GemmConfig.sr(9, seed=3), workers=1)
        layer = self._layer(gemm)
        out = layer.forward(x)
        layer.backward(np.ones_like(out))
        assert gemm.call_count == 3  # fwd + dW + dX


class TestPatchRows:
    def test_rows_match_im2col(self, rng):
        x = rng.normal(size=(3, 4, 9, 9))
        for kernel, stride, pad in [(3, 1, 1), (3, 2, 0), (1, 1, 0),
                                    (5, 1, 2)]:
            patches = PatchRows(x, kernel, stride, pad)
            cols, (oh, ow) = im2col(x, kernel, stride, pad)
            assert patches.out_hw == (oh, ow)
            assert patches.n_rows == cols.shape[0]
            assert np.array_equal(patches(0, patches.n_rows), cols)
            mid0, mid1 = patches.n_rows // 3, 2 * patches.n_rows // 3
            assert np.array_equal(patches(mid0, mid1), cols[mid0:mid1])

    def test_scatter_is_col2im_adjoint(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        patches = PatchRows(x, 3, 1, 1)
        grad_cols = rng.normal(size=(patches.n_rows, patches.n_cols))
        buffer = patches.padded_zeros()
        # scatter in two arbitrary chunks
        split = 50
        patches.scatter_rows(grad_cols[:split], 0, buffer)
        patches.scatter_rows(grad_cols[split:], split, buffer)
        want = col2im(grad_cols, x.shape, 3, 1, 1)
        assert np.allclose(patches.unpad(buffer), want, atol=1e-12)
