"""Accumulation-engine subsystem: equivalence, determinism, semantics.

The load-bearing guarantees:

* the fused ``sequential`` engine is **bit-identical** to the seed
  per-step MAC loop (kept as :func:`repro.emu.gemm.reference_matmul`)
  across RN/SR, formats, ``saturate`` on/off and LFSR vs software
  streams;
* pre-drawn bulk randomness reproduces per-step draws exactly;
* ``pairwise`` and ``chunked`` implement their documented reduction
  structures and coincide with known paths at the degenerate widths.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emu.config import GemmConfig
from repro.emu.engine import (
    ChunkedEngine,
    PairwiseEngine,
    SequentialEngine,
    available_orders,
    get_engine,
    round_partial,
)
from repro.emu.gemm import (
    QuantizedGemm,
    cast_inputs,
    matmul,
    matmul_batched,
    reference_matmul,
    sum_reduce,
)
from repro.fp.formats import FP8_E4M3, FP12_E6M5, FP16, FPFormat
from repro.fp.quantize import quantize
from repro.prng.streams import LFSRStream, SoftwareStream, bulk_draws


def _configs(seed=3):
    return [
        GemmConfig.sr(9, seed=seed),
        GemmConfig.sr(13, subnormals=False, seed=seed + 1),
        GemmConfig.sr(4, seed=seed + 2),
        GemmConfig.rn(FP12_E6M5),
        GemmConfig.rn(FP16),
        GemmConfig.sr(9, acc_format=FP8_E4M3, seed=seed + 3),
    ]


class TestRegistry:
    def test_known_engines(self):
        assert isinstance(get_engine("sequential"), SequentialEngine)
        assert isinstance(get_engine("pairwise"), PairwiseEngine)
        assert isinstance(get_engine("chunked"), ChunkedEngine)
        assert get_engine("chunked(8)").chunk == 8
        assert set(available_orders()) == {"sequential", "pairwise",
                                           "chunked", "rtl_rn", "rtl_lazy",
                                           "rtl_eager"}
        from repro.emu.engine import RTLEagerEngine

        assert isinstance(get_engine("rtl_eager"), RTLEagerEngine)
        assert get_engine("rtl_eager").design == "sr_eager"

    def test_engine_instance_passthrough(self):
        engine = ChunkedEngine(5)
        assert get_engine(engine) is engine

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError):
            get_engine("systolic")
        with pytest.raises(ValueError):
            get_engine("chunked(0)")
        with pytest.raises(ValueError):
            ChunkedEngine(0)

    def test_names(self):
        assert get_engine("chunked(8)").name == "chunked(8)"
        assert get_engine("sequential").name == "sequential"

    def test_new_engine_is_a_registry_entry(self, rng):
        """DESIGN.md section 7: registering in ENGINES is all it takes."""
        from repro.emu.engine import ENGINES

        class ReverseSequential(SequentialEngine):
            name = "reverse"

            def gemm(self, a, b, config):
                return super().gemm(a[:, :, ::-1], b[:, ::-1, :], config)

        ENGINES["reverse"] = ReverseSequential
        try:
            engine = get_engine("reverse")
            assert isinstance(engine, ReverseSequential)
            a = rng.normal(size=(4, 6))
            b = rng.normal(size=(6, 3))
            cfg = GemmConfig.rn(FP12_E6M5, accum_order="reverse")
            out = matmul(a, b, cfg)
            want = matmul(a[:, ::-1], b[::-1, :], GemmConfig.rn(FP12_E6M5))
            assert np.array_equal(out, want)
        finally:
            del ENGINES["reverse"]

    def test_empty_operands(self, rng):
        """Zero-sized M, N or K must not crash any engine (seed parity)."""
        for order in ["sequential", "pairwise", "chunked(4)"]:
            cfg = GemmConfig.sr(9, seed=1, accum_order=order)
            assert matmul(np.zeros((0, 4)), np.zeros((4, 3)),
                          cfg).shape == (0, 3)
            assert matmul(np.zeros((2, 4)), np.zeros((4, 0)),
                          cfg).shape == (2, 0)
            assert matmul(np.zeros((2, 0)), np.zeros((0, 3)),
                          cfg).shape == (2, 3)


class TestSequentialBitIdentity:
    """The fused hot path must equal the seed loop bit for bit."""

    @pytest.mark.parametrize("shape", [(17, 33, 9), (1, 5, 1), (5, 5, 5),
                                       (64, 100, 32), (3, 257, 31)])
    def test_matches_reference_across_configs(self, rng, shape):
        m, k, n = shape
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, n))
        for config, config2 in zip(_configs(), _configs()):
            got = matmul(a, b, config)
            want = reference_matmul(a, b, config2)
            assert np.array_equal(got, want), config.label

    def test_matches_reference_with_zeros_and_tiny_values(self, rng):
        a = rng.normal(size=(40, 64))
        a[::3] = 0.0
        a[1::7] *= 1e-8
        b = rng.normal(size=(64, 16))
        b[::4] = 0.0
        for config, config2 in zip(_configs(seed=8), _configs(seed=8)):
            assert np.array_equal(matmul(a, b, config),
                                  reference_matmul(a, b, config2)), \
                config.label

    def test_matches_reference_with_lfsr_stream(self, rng):
        a = rng.normal(size=(37, 21))
        b = rng.normal(size=(21, 5))
        cfg1 = GemmConfig.sr(9)
        cfg1.stream = LFSRStream(lanes=64, seed=5)
        cfg2 = GemmConfig.sr(9)
        cfg2.stream = LFSRStream(lanes=64, seed=5)
        assert np.array_equal(matmul(a, b, cfg1),
                              reference_matmul(a, b, cfg2))

    @pytest.mark.parametrize("saturate", [False, True])
    def test_matches_reference_under_overflow(self, saturate):
        big = np.full((3, 64), 3e4)
        cfg1 = GemmConfig.sr(9, seed=7)
        cfg2 = GemmConfig.sr(9, seed=7)
        cfg1.saturate = cfg2.saturate = saturate
        got = matmul(big, big.T, cfg1)
        want = reference_matmul(big, big.T, cfg2)
        assert np.array_equal(got, want)
        assert np.isfinite(got).all() == saturate

    def test_matches_reference_exact_sr_ablation(self, rng):
        """rbits=None (exact SR) takes the unfused fallback, still equal."""
        a = rng.normal(size=(6, 12))
        b = rng.normal(size=(12, 4))
        cfg1 = GemmConfig(mul_format=None, acc_format=FP12_E6M5,
                          rounding="stochastic", rbits=None,
                          stream=SoftwareStream(3))
        cfg2 = GemmConfig(mul_format=None, acc_format=FP12_E6M5,
                          rounding="stochastic", rbits=None,
                          stream=SoftwareStream(3))
        assert np.array_equal(matmul(a, b, cfg1),
                              reference_matmul(a, b, cfg2))

    def test_stream_stays_aligned_across_calls(self, rng):
        """Fused and seed paths consume the shared stream identically, so
        interleaving odd-shaped seed-path draws with fused GEMMs keeps
        every subsequent result aligned."""
        x = rng.normal(size=(1, 9))
        w = rng.normal(size=(9, 1))
        a = rng.normal(size=(10, 12))
        b = rng.normal(size=(12, 10))
        cfg1, cfg2 = GemmConfig.sr(9, seed=11), GemmConfig.sr(9, seed=11)
        r1 = [reference_matmul(x, w, cfg1), matmul(a, b, cfg1),
              matmul(x, w, cfg1)]
        r2 = [reference_matmul(x, w, cfg2), reference_matmul(a, b, cfg2),
              reference_matmul(x, w, cfg2)]
        for got, want in zip(r1, r2):
            assert np.array_equal(got, want)

    @given(
        st.integers(min_value=1, max_value=7),   # m
        st.integers(min_value=1, max_value=24),  # k
        st.integers(min_value=1, max_value=7),   # n
        st.integers(min_value=4, max_value=7),   # exponent bits
        st.integers(min_value=2, max_value=10),  # mantissa bits
        st.booleans(),                           # subnormals
        st.booleans(),                           # saturate
        st.sampled_from([None, 4, 9, 13]),       # rbits (None -> RN)
        st.integers(min_value=0, max_value=2**31 - 1),  # seed
    )
    @settings(max_examples=120, deadline=None)
    def test_property_fused_equals_seed(self, m, k, n, e_bits, m_bits,
                                        subnormals, saturate, rbits, seed):
        fmt = FPFormat(e_bits, m_bits, subnormals)
        data = np.random.default_rng(seed)
        a = data.normal(size=(m, k)) * 10.0 ** data.integers(-3, 4)
        b = data.normal(size=(k, n))

        def build():
            if rbits is None:
                cfg = GemmConfig.rn(fmt)
            else:
                cfg = GemmConfig.sr(rbits, acc_format=fmt, seed=seed)
            cfg.saturate = saturate
            return cfg

        assert np.array_equal(matmul(a, b, build()),
                              reference_matmul(a, b, build()))


class TestBulkDrawDeterminism:
    """Pre-drawn bulk randomness must reproduce per-step draws."""

    @pytest.mark.parametrize("rbits", [1, 4, 9, 13, 27, 32])
    def test_software_bulk_equals_per_step(self, rbits):
        s1, s2 = SoftwareStream(7), SoftwareStream(7)
        bulk = s1.integers_bulk(rbits, 5, (3, 4))
        seq = np.stack([s2.integers(rbits, (3, 4)) for _ in range(5)])
        assert np.array_equal(bulk, seq)
        # and the streams stay aligned afterwards
        assert np.array_equal(s1.integers(rbits, (2, 2)),
                              s2.integers(rbits, (2, 2)))

    def test_software_bulk_odd_total(self):
        s1, s2 = SoftwareStream(7), SoftwareStream(7)
        bulk = s1.integers_bulk(9, 3, (5, 1))  # 15 draws: odd total
        seq = np.stack([s2.integers(9, (5, 1)) for _ in range(3)])
        assert np.array_equal(bulk, seq)
        assert np.array_equal(s1.integers(9, (3,)), s2.integers(9, (3,)))

    def test_software_bulk_after_odd_per_step_call(self):
        """A pending PCG64 half-word cache must not desync the bulk path."""
        s1, s2 = SoftwareStream(7), SoftwareStream(7)
        first1 = s1.integers(9, (3,))  # odd: parks a cached half-word
        first2 = s2.integers(9, (3,))
        assert np.array_equal(first1, first2)
        bulk = s1.integers_bulk(9, 2, (2, 2))
        seq = np.stack([s2.integers(9, (2, 2)) for _ in range(2)])
        assert np.array_equal(bulk, seq)

    def test_lfsr_bulk_equals_per_step(self):
        l1 = LFSRStream(lanes=8, seed=5)
        l2 = LFSRStream(lanes=8, seed=5)
        bulk = l1.integers_bulk(9, 4, (3, 4))
        seq = np.stack([l2.integers(9, (3, 4)) for _ in range(4)])
        assert np.array_equal(bulk, seq)

    def test_bulk_draws_falls_back_without_bulk_method(self):
        class Minimal:
            def __init__(self):
                self.inner = SoftwareStream(5)

            def integers(self, rbits, shape):
                return self.inner.integers(rbits, shape)

        ref = SoftwareStream(5)
        got = bulk_draws(Minimal(), 9, 3, (2, 2))
        want = np.stack([ref.integers(9, (2, 2)) for _ in range(3)])
        assert np.array_equal(got, want)

    def test_draw_values_in_range(self):
        draws = SoftwareStream(1).integers_bulk(9, 4, (8, 8))
        assert draws.min() >= 0 and draws.max() < 512


class TestBatched:
    def test_batched_matches_per_matrix_loop(self, rng):
        a = rng.normal(size=(3, 6, 10))
        b = rng.normal(size=(3, 10, 4))
        got = matmul_batched(a, b, GemmConfig.sr(9, seed=5))
        cfg2 = GemmConfig.sr(9, seed=5)
        want = np.stack([reference_matmul(a[i], b[i], cfg2)
                         for i in range(3)])
        # Not elementwise identical (draw order interleaves batches), but
        # on-grid and statistically close; exactness holds for RN where
        # no randomness is involved.
        assert got.shape == want.shape
        rn = GemmConfig.rn(FP12_E6M5)
        got_rn = matmul_batched(a, b, rn)
        want_rn = np.stack([reference_matmul(a[i], b[i], rn)
                            for i in range(3)])
        assert np.array_equal(got_rn, want_rn)

    def test_batched_b1_equals_2d(self, rng):
        a = rng.normal(size=(9, 14))
        b = rng.normal(size=(14, 6))
        got = matmul_batched(a[None], b[None], GemmConfig.sr(9, seed=2))[0]
        want = matmul(a, b, GemmConfig.sr(9, seed=2))
        assert np.array_equal(got, want)

    def test_batched_shape_validation(self, rng):
        cfg = GemmConfig.fp32_baseline()
        with pytest.raises(ValueError):
            matmul_batched(rng.normal(size=(2, 3, 4)),
                           rng.normal(size=(3, 4, 2)), cfg)
        with pytest.raises(ValueError):
            matmul_batched(rng.normal(size=(2, 3, 4)),
                           rng.normal(size=(2, 5, 2)), cfg)

    def test_quantized_gemm_accepts_3d(self, rng):
        gemm = QuantizedGemm(GemmConfig.sr(9, seed=1))
        out = gemm(rng.normal(size=(2, 4, 8)), rng.normal(size=(2, 8, 3)))
        assert out.shape == (2, 4, 3)
        assert gemm.call_count == 1
        with pytest.raises(ValueError):
            gemm(rng.normal(size=(2, 4, 8)), rng.normal(size=(8, 3)))

    def test_batched_baseline_and_one_shot(self, rng):
        a = rng.normal(size=(2, 5, 7))
        b = rng.normal(size=(2, 7, 3))
        assert np.allclose(matmul_batched(a, b, GemmConfig.fp32_baseline()),
                           a @ b, rtol=0, atol=0)
        cfg = GemmConfig.rn(FP12_E6M5)
        cfg.per_step = False
        aq, bq = cast_inputs(a, b, cfg)
        want = quantize(aq @ bq, cfg.acc_format, "nearest")
        assert np.array_equal(matmul_batched(a, b, cfg), want)


class TestPairwiseEngine:
    def test_tree_structure_small(self, rng):
        """K=4 pairwise: round(round(p0+p1) + round(p2+p3))."""
        cfg = GemmConfig.rn(FP12_E6M5, accum_order="pairwise")
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        got = matmul(a, b, cfg)
        aq, bq = cast_inputs(a, b, cfg)
        products = [aq[:, s, None] * bq[None, s, :] for s in range(4)]

        def rn(x):
            return quantize(x, cfg.acc_format, "nearest")

        want = rn(rn(products[0] + products[1])
                  + rn(products[2] + products[3]))
        assert np.array_equal(got, want)

    def test_odd_leftover_carried_unrounded(self, rng):
        """K=3: round(round(p0+p1) + p2) — p2 passes through wiring."""
        cfg = GemmConfig.rn(FP12_E6M5, accum_order="pairwise")
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(3, 2))
        got = matmul(a, b, cfg)
        aq, bq = cast_inputs(a, b, cfg)
        products = [aq[:, s, None] * bq[None, s, :] for s in range(3)]

        def rn(x):
            return quantize(x, cfg.acc_format, "nearest")

        want = rn(rn(products[0] + products[1]) + products[2])
        assert np.array_equal(got, want)

    def test_k1_rounds_once(self, rng):
        cfg = GemmConfig.rn(FP12_E6M5, accum_order="pairwise")
        a = rng.normal(size=(2, 1))
        b = rng.normal(size=(1, 2))
        aq, bq = cast_inputs(a, b, cfg)
        want = quantize(aq @ bq, cfg.acc_format, "nearest")
        assert np.array_equal(matmul(a, b, cfg), want)

    def test_sr_results_on_grid_and_deterministic(self, rng):
        a = rng.normal(size=(8, 64))
        b = rng.normal(size=(64, 8))
        out1 = matmul(a, b, GemmConfig.sr(9, seed=5,
                                          accum_order="pairwise"))
        out2 = matmul(a, b, GemmConfig.sr(9, seed=5,
                                          accum_order="pairwise"))
        assert np.array_equal(out1, out2)
        cfg = GemmConfig.sr(9, seed=5)
        regrid = quantize(out1, cfg.acc_format, "toward_zero")
        assert np.array_equal(out1, regrid)

    def test_swamping_resistance_vs_sequential(self):
        """The adder tree keeps O(log K) error where the MAC chain
        stagnates — the scenario-diversity point of the subsystem."""
        k = 4096
        a = np.full((1, k), 1.0)
        b = np.full((k, 1), 1.0 / 64)
        exact = k / 64
        seq = matmul(a, b, GemmConfig.rn(FP12_E6M5))[0, 0]
        tree = matmul(a, b, GemmConfig.rn(FP12_E6M5,
                                          accum_order="pairwise"))[0, 0]
        assert seq < 0.8 * exact          # MAC chain stagnates
        assert abs(tree - exact) / exact < 0.02  # tree does not


class TestChunkedEngine:
    def test_chunk1_equals_sequential(self, rng):
        a = rng.normal(size=(7, 20))
        b = rng.normal(size=(20, 5))
        got = matmul(a, b, GemmConfig.sr(9, seed=4,
                                         accum_order="chunked(1)"))
        want = matmul(a, b, GemmConfig.sr(9, seed=4))
        assert np.array_equal(got, want)

    def test_chunk_geq_k_equals_one_shot(self, rng):
        a = rng.normal(size=(5, 12))
        b = rng.normal(size=(12, 5))
        cfg = GemmConfig.rn(FP12_E6M5, accum_order="chunked(64)")
        got = matmul(a, b, cfg)
        one_shot = GemmConfig.rn(FP12_E6M5)
        one_shot.per_step = False
        assert np.array_equal(got, matmul(a, b, one_shot))

    def test_chunk_structure(self, rng):
        """K=6, c=2: three exact partial sums, rounded at each boundary."""
        cfg = GemmConfig.rn(FP12_E6M5, accum_order="chunked(2)")
        a = rng.normal(size=(3, 6))
        b = rng.normal(size=(6, 3))
        got = matmul(a, b, cfg)
        aq, bq = cast_inputs(a, b, cfg)

        def rn(x):
            return quantize(x, cfg.acc_format, "nearest")

        acc = np.zeros((3, 3))
        for c0 in range(0, 6, 2):
            acc = rn(acc + aq[:, c0:c0 + 2] @ bq[c0:c0 + 2, :])
        assert np.array_equal(got, acc)

    def test_swamping_reduced_with_width(self):
        k = 4096
        a = np.full((1, k), 1.0)
        b = np.full((k, 1), 1.0 / 64)
        exact = k / 64
        errors = []
        for order in ["sequential", "chunked(8)", "chunked(64)"]:
            got = matmul(a, b, GemmConfig.rn(FP12_E6M5,
                                             accum_order=order))[0, 0]
            errors.append(abs(got - exact) / exact)
        assert errors[0] > errors[1] > errors[2]


class TestSumReduce:
    def test_sum_reduce_dispatches_engines(self, rng):
        values = rng.normal(size=(40, 4))
        for order in ["sequential", "pairwise", "chunked(4)"]:
            cfg = GemmConfig.rn(FP16, accum_order=order)
            out = sum_reduce(values, cfg, axis=0)
            assert out.shape == (4,)
            assert np.array_equal(out, quantize(out, FP16, "toward_zero"))

    def test_sum_reduce_sequential_matches_seed_loop(self, rng):
        values = rng.normal(size=(30, 5))
        cfg1 = GemmConfig.sr(9, seed=6)
        cfg2 = GemmConfig.sr(9, seed=6)
        got = sum_reduce(values, cfg1, axis=0)
        acc = np.zeros(5)
        for step in range(values.shape[0]):
            acc = round_partial(acc + values[step], cfg2)
        assert np.array_equal(got, acc)

    def test_sum_reduce_scalar_tail_shape_uniform_across_engines(self, rng):
        values = rng.normal(size=17)
        for order in ["sequential", "pairwise", "chunked(4)"]:
            cfg = GemmConfig.rn(FP16, accum_order=order)
            out = sum_reduce(values, cfg, axis=-1)
            assert np.shape(out) == (), order
            assert np.array_equal(out, quantize(out, FP16, "toward_zero"))


class TestConfigIntegration:
    def test_accum_order_in_label(self):
        assert "[pairwise]" in GemmConfig.sr(
            9, accum_order="pairwise").label
        assert "[" not in GemmConfig.sr(9).label

    def test_training_table_config_carries_order(self):
        from repro.emu.config import paper_table3_config

        cfg = paper_table3_config("sr", rbits=9, accum_order="chunked(4)")
        assert cfg.accum_order == "chunked(4)"
        cfg = paper_table3_config("rn_e6m5", accum_order="pairwise")
        assert cfg.accum_order == "pairwise"

    def test_runner_rejects_unknown_order(self):
        from repro.experiments.runner import main

        with pytest.raises(ValueError):
            main(["table5", "--accum-order", "bogus"])
