"""Schedule autotuner: cache robustness, search semantics, bit-identity.

The contracts pinned here (see docs/autotuning.md):

* schedules are pure wall-clock choices — a tuned GEMM, experiment run,
  or serving session produces **bitwise identical** outputs to the
  untuned default;
* the on-disk cache degrades silently: missing, corrupt, or stale
  entries (and unwritable directories) fall back to the default
  schedule, concurrent writers are last-writer-wins with no torn reads;
* warm lookups are memoized dictionary hits, well under a millisecond;
* the only engine substitution the tuner may make is one proven
  bit-identical (``chunked(1)`` for ``sequential``), and search can
  never pick a schedule slower than the default beyond the margin.
"""

import json
import os
import threading
import time
import numpy as np
import pytest

from repro.emu import GemmConfig, ParallelQuantizedGemm, matmul
from repro.emu.autotune import (
    DEFAULT_MARGIN,
    EQUIVALENT_ENGINES,
    Schedule,
    ScheduleCache,
    candidate_schedules,
    clear_memo,
    engine_variants,
    get_schedule,
    key_digest,
    resolve_workers,
    schedule_key,
    search_schedule,
    shape_bucket,
)
from repro.emu.parallel import BLOCK_ROWS

SHAPE = (1, 64, 27, 8)


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()


@pytest.fixture
def config():
    return GemmConfig.sr(9, seed=7)


def _store_default(tmp_path, config, schedule=None):
    key = schedule_key(SHAPE, config)
    cache = ScheduleCache(str(tmp_path))
    cache.store(key, schedule or Schedule(tile_rows=2 * BLOCK_ROWS))
    return key, cache


class TestResolveWorkers:
    def test_auto_is_cpu_count(self):
        assert resolve_workers("auto") == max(1, os.cpu_count() or 1)
        assert resolve_workers(" AUTO ") == resolve_workers("auto")

    def test_numeric_and_default(self):
        assert resolve_workers("4") == 4
        assert resolve_workers(2) == 2
        assert resolve_workers(None) == 1
        assert resolve_workers(None, default=3) == 3

    @pytest.mark.parametrize("bad", ["0", "-1", "many"])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            resolve_workers(bad)


class TestSchedule:
    def test_round_trip(self):
        schedule = Schedule(workers=4, tile_rows=128, backend="process",
                            engine="chunked(1)")
        assert Schedule.from_dict(schedule.to_dict()) == schedule

    def test_validation(self):
        with pytest.raises(ValueError):
            Schedule(backend="fiber")
        with pytest.raises(ValueError):
            Schedule(workers=0)

    def test_serial_scheduler_forces_one_worker(self):
        scheduler = Schedule(workers=8, backend="serial").make_scheduler()
        assert scheduler.workers == 1

    def test_apply_config_swaps_engine_only(self, config):
        assert Schedule().apply_config(config) is config
        swapped = Schedule(engine="chunked(1)").apply_config(config)
        assert swapped.accum_order == "chunked(1)"
        assert swapped.stream is config.stream


class TestCacheKey:
    def test_shape_bucket_rounds_up(self):
        assert shape_bucket((3, 100, 64, 10)) == (4, 128, 64, 16)
        assert shape_bucket((1, 1, 1, 1)) == (1, 1, 1, 1)
        with pytest.raises(ValueError):
            shape_bucket((64, 64, 64))

    def test_seed_normalized_away(self, config):
        other = GemmConfig.sr(9, seed=12345)
        assert schedule_key(SHAPE, config) == schedule_key(SHAPE, other)
        assert key_digest(schedule_key(SHAPE, config)) == \
            key_digest(schedule_key(SHAPE, other))

    def test_datapath_still_separates(self, config):
        other = GemmConfig.sr(7, seed=7)
        assert schedule_key(SHAPE, config) != schedule_key(SHAPE, other)

    def test_machine_fields_present(self, config):
        key = schedule_key(SHAPE, config)
        assert key["cpu_count"] == (os.cpu_count() or 1)
        assert key["numpy"] == np.__version__


class TestCacheRobustness:
    """Missing / corrupt / stale entries all behave as silent misses."""

    def test_missing_directory_is_a_miss(self, tmp_path, config):
        cache = ScheduleCache(str(tmp_path / "never-created"))
        assert cache.lookup(schedule_key(SHAPE, config)) is None
        assert get_schedule(SHAPE, config, mode="cached",
                            cache_dir=str(tmp_path / "never-created")) \
            == Schedule()

    def test_corrupt_entry_is_a_miss(self, tmp_path, config):
        key, cache = _store_default(tmp_path, config)
        path = cache._path(key)
        for garbage in ["{not json", "", json.dumps({"schedule": {}}),
                        json.dumps({"key": "wrong", "schedule": None})]:
            with open(path, "w") as fh:
                fh.write(garbage)
            assert cache.lookup(key) is None
            clear_memo()
            assert get_schedule(SHAPE, config, mode="cached",
                                cache_dir=str(tmp_path)) == Schedule()

    def test_stale_key_is_a_miss(self, tmp_path, config):
        """Digest collision with a different full key (e.g. an older
        schema writing under the same basename) must not apply."""
        key, cache = _store_default(tmp_path, config)
        entry = json.load(open(cache._path(key)))
        entry["key"]["schema"] = -1
        with open(cache._path(key), "w") as fh:
            json.dump(entry, fh)
        assert cache.lookup(key) is None

    def test_unwritable_cache_still_searches(self, tmp_path, config):
        """search mode with an unwritable directory: winner is memoized
        in-process, the OSError is swallowed."""
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        schedule = get_schedule(SHAPE, config, mode="search",
                                cache_dir=str(blocked),
                                search_kwargs={"repeats": 1,
                                               "max_seconds": 5.0})
        assert isinstance(schedule, Schedule)
        # memoized: the second call must not search again
        start = time.perf_counter()
        again = get_schedule(SHAPE, config, mode="search",
                             cache_dir=str(blocked))
        assert time.perf_counter() - start < 0.01
        assert again == schedule

    def test_atomic_store_roundtrip(self, tmp_path, config):
        want = Schedule(workers=2, backend="thread", tile_rows=128)
        key, cache = _store_default(tmp_path, config, want)
        assert cache.lookup(key) == want
        leftovers = [p for p in os.listdir(tmp_path)
                     if p.endswith(".tmp")]
        assert leftovers == []


class TestConcurrentWriters:
    def test_last_writer_wins_no_torn_reads(self, tmp_path, config):
        """Hammer one entry from writer threads while readers loop:
        every successful read is one of the two valid schedules, never
        a torn / partially-written entry."""
        key = schedule_key(SHAPE, config)
        cache = ScheduleCache(str(tmp_path))
        variants = [Schedule(tile_rows=BLOCK_ROWS),
                    Schedule(tile_rows=2 * BLOCK_ROWS)]
        stop = threading.Event()
        bad = []

        def writer(schedule):
            while not stop.is_set():
                cache.store(key, schedule)

        def reader():
            while not stop.is_set():
                got = cache.lookup(key)
                if got is not None and got not in variants:
                    bad.append(got)

        threads = [threading.Thread(target=writer, args=(v,))
                   for v in variants]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join()
        assert bad == []
        assert cache.lookup(key) in variants      # last writer won


class TestSearch:
    def test_default_always_candidate(self, config):
        default = Schedule(tile_rows=2 * BLOCK_ROWS)
        pool = candidate_schedules(SHAPE, config, default=default)
        assert pool[0] == default
        assert Schedule() in pool

    def test_engine_variants_table(self):
        assert engine_variants("sequential") == ("sequential", "chunked(1)")
        assert engine_variants("pairwise") == ("pairwise",)
        assert "sequential" in EQUIVALENT_ENGINES

    def test_winner_never_regresses(self, config):
        """The winner is the default unless a challenger beats it by
        more than the margin — checked against the recorded timings."""
        result = search_schedule(SHAPE, config, repeats=2, max_seconds=10.0)
        default_s = result.default_seconds
        if result.schedule == Schedule():
            assert result.best_seconds == default_s
        else:
            assert result.best_seconds < default_s * (1.0 - DEFAULT_MARGIN)
        assert result.speedup >= 1.0

    def test_search_mode_persists_and_reloads(self, tmp_path, config):
        first = get_schedule(SHAPE, config, mode="search",
                             cache_dir=str(tmp_path),
                             search_kwargs={"repeats": 1,
                                            "max_seconds": 5.0})
        clear_memo()                 # force the disk read
        assert get_schedule(SHAPE, config, mode="cached",
                            cache_dir=str(tmp_path)) == first

    def test_bad_mode_rejected(self, config):
        with pytest.raises(ValueError, match="autotune mode"):
            get_schedule(SHAPE, config, mode="aggressive")

    def test_mode_off_is_default(self, tmp_path, config):
        _store_default(tmp_path, config)
        assert get_schedule(SHAPE, config, mode="off",
                            cache_dir=str(tmp_path)) == Schedule()


class TestWarmLookup:
    def test_under_one_millisecond(self, tmp_path, config):
        _store_default(tmp_path, config)
        get_schedule(SHAPE, config, mode="cached", cache_dir=str(tmp_path))
        start = time.perf_counter()
        for _ in range(100):
            get_schedule(SHAPE, config, mode="cached",
                         cache_dir=str(tmp_path))
        per_call = (time.perf_counter() - start) / 100
        assert per_call < 1e-3

    def test_memo_survives_cache_deletion(self, tmp_path, config):
        key, cache = _store_default(tmp_path, config)
        want = get_schedule(SHAPE, config, mode="cached",
                            cache_dir=str(tmp_path))
        os.unlink(cache._path(key))
        assert get_schedule(SHAPE, config, mode="cached",
                            cache_dir=str(tmp_path)) == want


class TestBitIdentity:
    """Tuning is correctness-free: tuned == untuned, bit for bit."""

    def test_chunked1_equals_sequential(self, rng):
        """The one registered engine substitution, proven directly."""
        a = rng.normal(size=(48, 33))
        b = rng.normal(size=(33, 20))
        seq = matmul(a, b, GemmConfig.sr(9, seed=5))
        chk = matmul(a, b, GemmConfig.sr(9, seed=5,
                                         accum_order="chunked(1)"))
        assert np.array_equal(seq, chk)

    def test_every_candidate_matches_default(self, rng, config):
        """All enumerated schedules produce the default's bits (the
        invariant that makes search correctness-free)."""
        from repro.emu.autotune import scheduler_for
        from repro.emu.parallel import parallel_matmul_batched

        a, b = rng.normal(size=(2, 70, 24)), rng.normal(size=(2, 24, 6))
        reference = None
        for schedule in candidate_schedules((2, 70, 24, 6), config,
                                            max_workers=2):
            cfg = schedule.apply_config(GemmConfig.sr(9, seed=7))
            out = parallel_matmul_batched(a, b, cfg,
                                          scheduler=scheduler_for(schedule))
            if reference is None:
                reference = out
            else:
                assert np.array_equal(reference, out), schedule.label

    def test_gemm_tuned_equals_default(self, rng, tmp_path):
        a, b = rng.normal(size=(70, 24)), rng.normal(size=(24, 6))
        base = ParallelQuantizedGemm(GemmConfig.sr(9, seed=3), workers=1)
        tuned = ParallelQuantizedGemm(GemmConfig.sr(9, seed=3), workers=1,
                                      autotune="search",
                                      schedule_cache=str(tmp_path))
        assert np.array_equal(base(a, b), tuned(a, b))
        # and a second instance reading the now-warm disk cache
        clear_memo()
        cached = ParallelQuantizedGemm(GemmConfig.sr(9, seed=3), workers=1,
                                       autotune="cached",
                                       schedule_cache=str(tmp_path))
        base2 = ParallelQuantizedGemm(GemmConfig.sr(9, seed=3), workers=1)
        assert np.array_equal(base2(a, b), cached(a, b))

    def test_search_never_advances_live_stream(self, rng, tmp_path):
        """Tuning draws from a private stream: a tuned GEMM's first
        call consumes exactly the draws an untuned one would."""
        a, b = rng.normal(size=(30, 16)), rng.normal(size=(16, 4))
        base = ParallelQuantizedGemm(GemmConfig.sr(9, seed=3), workers=1)
        tuned = ParallelQuantizedGemm(GemmConfig.sr(9, seed=3), workers=1,
                                      autotune="search",
                                      schedule_cache=str(tmp_path))
        for _ in range(3):           # repeated calls stay in lockstep
            assert np.array_equal(base(a, b), tuned(a, b))


class TestEndToEnd:
    def test_model_logits_bitwise(self, tmp_path, rng):
        """The CI assertion: a full model forward through build_gemm
        with autotune on vs off yields bitwise identical logits."""
        from repro.data import make_cifar10_like
        from repro.experiments.training import (TrainingScale, build_gemm,
                                                build_model)

        scale = TrainingScale("testing", 64, 32, 8, 1, 32, "mlp", 16,
                              lr=0.05, weight_decay=1e-4)
        dataset = make_cifar10_like(64, 32, 8, seed=0)
        x = dataset.test_images[:4]

        def logits(autotune, workers=1):
            # workers=2 autotune=off is the untuned *tiled* baseline:
            # every autotuned run shares the tiled draw order, which
            # differs from the legacy serial path (workers=1, off).
            gemm = build_gemm(GemmConfig.sr(9, seed=1), workers, autotune,
                              str(tmp_path))
            return build_model(scale, dataset, gemm, seed=1).forward(x)

        clear_memo()
        base = logits("off", workers=2)
        tuned = logits("search")
        assert np.array_equal(base, tuned)
        clear_memo()                 # cold memo, warm disk cache
        assert np.array_equal(base, logits("cached"))

    def test_training_accuracy_identical(self, tmp_path):
        from repro.data import make_cifar10_like
        from repro.experiments.training import TrainingScale, train_once

        scale = TrainingScale("testing", 48, 24, 8, 1, 32, "mlp", 16,
                              lr=0.05, weight_decay=1e-4)
        dataset = make_cifar10_like(48, 24, 8, seed=0)
        # workers=2 is the untuned tiled baseline (see logits test)
        base = train_once(dataset, scale, GemmConfig.sr(9, seed=1), seed=1,
                          workers=2)
        tuned = train_once(dataset, scale, GemmConfig.sr(9, seed=1), seed=1,
                           autotune="search", schedule_cache=str(tmp_path))
        assert base == tuned

    def test_serve_session_tune_parity(self, tmp_path, rng):
        from repro.models import SimpleCNN
        from repro.serve import InferenceSession

        x = rng.normal(size=(3, 8, 8))
        plain = InferenceSession(SimpleCNN(10, 3, 4, seed=1),
                                 GemmConfig.sr(9, seed=3))
        tuned = InferenceSession(SimpleCNN(10, 3, 4, seed=1),
                                 GemmConfig.sr(9, seed=3),
                                 autotune="search",
                                 schedule_cache=str(tmp_path))
        # no input_spec on a directly-built session: a no-op without a
        # sample, a real warm-up pass with one
        assert not tuned.tune()
        assert tuned.tune(sample=x)
        assert np.array_equal(plain.predict(x), tuned.predict(x))
