"""Unit tests for the exact scalar rounding reference."""

from fractions import Fraction

import pytest

from repro.fp.formats import FP12_E6M5, FP16, FPFormat
from repro.fp.rounding import (
    OVERFLOW,
    decompose,
    round_float,
    round_to_format,
    rounding_candidates,
    sr_probability,
)


class TestDecompose:
    def test_exact_value(self):
        sign, exp, k, frac = decompose(1.5, FP16)
        assert sign == 1 and exp == 0
        assert frac == 0
        assert k * Fraction(2) ** (exp - FP16.mantissa_bits) == Fraction(3, 2)

    def test_fraction_is_eps_x(self):
        # x = 1 + eps/4 -> eps_x = 1/4
        fmt = FP12_E6M5
        x = Fraction(1) + Fraction(fmt.machine_eps) / 4
        _, _, _, frac = decompose(x, fmt)
        assert frac == Fraction(1, 4)

    def test_negative_sign(self):
        sign, _, _, _ = decompose(-2.0, FP16)
        assert sign == -1

    def test_subnormal_clamps_exponent(self):
        fmt = FP12_E6M5
        _, exp, _, _ = decompose(fmt.min_subnormal * 3, fmt)
        assert exp == fmt.emin


class TestCandidates:
    def test_interior_point(self):
        fmt = FPFormat(4, 3)
        down, up, prob = rounding_candidates(1.05, fmt)
        assert down == Fraction(1)
        assert up == Fraction(9, 8)
        assert prob == (Fraction(1.05) - 1) / Fraction(1, 8)

    def test_overflow_candidate(self):
        fmt = FPFormat(4, 3)
        down, up, _ = rounding_candidates(fmt.max_value * 1.01, fmt)
        assert down == Fraction(fmt.max_value)
        assert up is OVERFLOW


class TestNearestEven:
    def test_round_down_below_half(self):
        fmt = FPFormat(4, 3)
        assert round_to_format(1.01, fmt, "nearest") == 1

    def test_round_up_above_half(self):
        fmt = FPFormat(4, 3)
        assert round_to_format(1.12, fmt, "nearest") == Fraction(9, 8)

    def test_tie_to_even_down(self):
        fmt = FPFormat(4, 3)
        # 1 + eps/2 ties between 1 (even) and 1+eps (odd) -> 1
        assert round_to_format(Fraction(17, 16), fmt, "nearest") == 1

    def test_tie_to_even_up(self):
        fmt = FPFormat(4, 3)
        # 1+eps + eps/2 ties between odd 1+eps and even 1+2eps -> up
        x = Fraction(1) + Fraction(3, 16)
        assert round_to_format(x, fmt, "nearest") == Fraction(10, 8)

    def test_overflow_to_infinity(self):
        fmt = FPFormat(4, 3)
        assert round_to_format(fmt.max_value * 2, fmt, "nearest") == float("inf")
        assert round_to_format(-fmt.max_value * 2, fmt, "nearest") == float("-inf")


class TestDirected:
    @pytest.fixture
    def fmt(self):
        return FPFormat(4, 3)

    def test_toward_zero(self, fmt):
        assert round_to_format(1.12, fmt, "toward_zero") == 1
        assert round_to_format(-1.12, fmt, "toward_zero") == -1

    def test_up(self, fmt):
        assert round_to_format(1.01, fmt, "up") == Fraction(9, 8)
        assert round_to_format(-1.12, fmt, "up") == -1

    def test_down(self, fmt):
        assert round_to_format(1.12, fmt, "down") == 1
        assert round_to_format(-1.01, fmt, "down") == -Fraction(9, 8)

    def test_exact_values_unchanged(self, fmt):
        for mode in ("nearest", "toward_zero", "up", "down"):
            assert round_to_format(1.5, fmt, mode) == Fraction(3, 2)


class TestStochastic:
    def test_exact_sr_thresholds(self):
        fmt = FPFormat(4, 3)
        x = Fraction(1) + Fraction(1, 32)  # eps_x = 1/4
        down = round_to_format(x, fmt, "stochastic", random_unit=Fraction(1, 4))
        up = round_to_format(x, fmt, "stochastic", random_unit=Fraction(1, 5))
        assert down == 1
        assert up == Fraction(9, 8)

    def test_rbit_sr_never_up_when_frac_below_resolution(self):
        # eps_x < 2^-r  ->  kept bits are zero -> never rounds up (the
        # mechanism behind the r=4 accuracy collapse of Table III).
        fmt = FP12_E6M5
        x = Fraction(1) + Fraction(fmt.machine_eps) / 64
        for random_int in range(16):
            result = round_to_format(x, fmt, "stochastic",
                                     random_int=random_int, rbits=4)
            assert result == 1

    def test_rbit_sr_probability_counts(self):
        fmt = FPFormat(4, 3)
        rbits = 5
        x = Fraction(1) + Fraction(3, 8) * Fraction(fmt.machine_eps)
        ups = sum(
            round_to_format(x, fmt, "stochastic", random_int=i, rbits=rbits)
            != 1
            for i in range(1 << rbits)
        )
        # eps_x = 3/8 -> exactly floor(3/8 * 32) = 12 of 32 draws round up.
        assert ups == 12

    def test_requires_random_argument(self):
        with pytest.raises(ValueError):
            round_to_format(1.01, FP16, "stochastic")
        with pytest.raises(ValueError):
            round_to_format(1.01, FP16, "stochastic", rbits=5)

    def test_random_int_range_checked(self):
        with pytest.raises(ValueError):
            round_to_format(1.01, FP16, "stochastic", rbits=3, random_int=8)


class TestSrProbability:
    def test_exact(self):
        fmt = FPFormat(4, 3)
        x = Fraction(1) + Fraction(1, 32)
        assert sr_probability(x, fmt) == Fraction(1, 4)

    def test_quantized(self):
        fmt = FPFormat(4, 3)
        x = Fraction(1) + Fraction(1, 48)  # eps_x = 1/6
        assert sr_probability(x, fmt, rbits=3) == Fraction(1, 8)
        assert sr_probability(x, fmt, rbits=1) == 0


class TestFlushToZero:
    def test_subnormal_result_flushed(self):
        fmt = FPFormat(4, 3, subnormals=False)
        tiny = fmt.min_normal / 4
        assert round_to_format(tiny, fmt, "nearest") == 0

    def test_subnormal_kept_with_support(self):
        fmt = FPFormat(4, 3)
        tiny = fmt.min_subnormal * 3
        assert round_to_format(tiny, fmt, "nearest") == Fraction(tiny)


class TestRoundFloat:
    def test_specials_passthrough(self):
        assert round_float(float("inf"), FP16) == float("inf")
        assert round_float(float("-inf"), FP16) == float("-inf")
        assert round_float(float("nan"), FP16) != round_float(float("nan"), FP16)

    def test_signed_zero_preserved(self):
        import math

        assert math.copysign(1.0, round_float(-0.0, FP16)) == -1.0

    def test_finite_roundtrip(self):
        assert round_float(1.0 / 3.0, FP16) == pytest.approx(1 / 3, rel=1e-3)
