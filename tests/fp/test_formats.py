"""Unit tests for FPFormat parameters and helpers."""

import math
from fractions import Fraction

import pytest

from repro.fp.formats import (
    BF16,
    FP8_E4M3,
    FP8_E5M2,
    FP12_E6M5,
    FP16,
    FP32,
    FPFormat,
    get_format,
)


class TestDerivedParameters:
    def test_fp32_matches_ieee_single(self):
        assert FP32.precision == 24
        assert FP32.bias == 127
        assert FP32.emax == 127
        assert FP32.emin == -126
        assert FP32.machine_eps == 2.0 ** -23
        assert FP32.max_value == (2 - 2 ** -23) * 2.0 ** 127
        assert FP32.min_normal == 2.0 ** -126

    def test_fp16_matches_ieee_half(self):
        assert FP16.precision == 11
        assert FP16.bias == 15
        assert FP16.emin == -14
        assert FP16.max_value == 65504.0
        assert FP16.min_normal == 2.0 ** -14
        assert FP16.min_subnormal == 2.0 ** -24

    def test_e6m5_paper_format(self):
        assert FP12_E6M5.total_bits == 12
        assert FP12_E6M5.emax == 31
        assert FP12_E6M5.emin == -30
        assert FP12_E6M5.precision == 6

    def test_e5m2_fp8(self):
        assert FP8_E5M2.total_bits == 8
        assert FP8_E5M2.emax == 15
        assert FP8_E5M2.min_subnormal == 2.0 ** -16

    def test_bf16(self):
        assert BF16.exponent_bits == 8
        assert BF16.emax == FP32.emax
        assert BF16.total_bits == 16

    def test_smallest_positive_depends_on_subnormals(self):
        with_sub = FP12_E6M5
        without = FP12_E6M5.with_subnormals(False)
        assert with_sub.smallest_positive == with_sub.min_subnormal
        assert without.smallest_positive == without.min_normal


class TestValidation:
    def test_rejects_tiny_exponent(self):
        with pytest.raises(ValueError):
            FPFormat(1, 5)

    def test_rejects_zero_mantissa(self):
        with pytest.raises(ValueError):
            FPFormat(5, 0)

    def test_rejects_wider_than_float64(self):
        with pytest.raises(ValueError):
            FPFormat(12, 10)
        with pytest.raises(ValueError):
            FPFormat(8, 53)

    def test_default_name(self):
        assert FPFormat(6, 5).name == "E6M5"

    def test_with_subnormals_roundtrip(self):
        fz = FP16.with_subnormals(False)
        assert not fz.subnormals
        assert fz.exponent_bits == FP16.exponent_bits
        back = fz.with_subnormals(True)
        assert back.subnormals
        assert "-fz" not in back.name


class TestUlp:
    def test_ulp_at_one(self):
        assert FP16.ulp(1.0) == FP16.machine_eps

    def test_ulp_in_binade(self):
        assert FP16.ulp(5.0) == 2.0 ** (2 - 10)

    def test_ulp_subnormal_range(self):
        assert FP16.ulp(FP16.min_normal / 4) == FP16.min_subnormal

    def test_ulp_negative_symmetric(self):
        assert FP16.ulp(-3.0) == FP16.ulp(3.0)

    def test_exact_ulp_matches_float_ulp(self):
        for value in (1.0, 0.75, 123.0, 2.0 ** -14, 2.0 ** -20):
            assert float(FP16.exact_ulp(Fraction(value))) == FP16.ulp(value)


class TestRepresentable:
    def test_one_is_representable(self, any_format):
        assert any_format.is_representable(1.0)

    def test_max_value_representable(self, any_format):
        assert any_format.is_representable(any_format.max_value)

    def test_off_grid_not_representable(self):
        assert not FP12_E6M5.is_representable(1.0 + 2.0 ** -10)

    def test_specials_representable(self):
        assert FP16.is_representable(float("inf"))
        assert FP16.is_representable(float("nan"))


class TestRegistry:
    def test_named_lookup(self):
        assert get_format("FP16") is FP16
        assert get_format("fp32") is FP32
        assert get_format("E6M5") is FP12_E6M5
        assert get_format("BF16") is BF16

    def test_generic_exmy_lookup(self):
        fmt = get_format("E7M4")
        assert fmt.exponent_bits == 7
        assert fmt.mantissa_bits == 4

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_format("FP64X")

    def test_equality_ignores_name(self):
        assert FPFormat(5, 10, name="a") == FPFormat(5, 10, name="b")
        assert FPFormat(5, 10) != FPFormat(5, 10, subnormals=False)
