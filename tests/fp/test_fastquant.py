"""The bit-twiddling fast quantizer must match the reference bit-for-bit."""

import numpy as np
import pytest

from repro.fp.fastquant import quantize_fast
from repro.fp.formats import FP8_E5M2, FP12_E6M5, FP16, FP32, FPFormat
from repro.fp.quantize import quantize

FORMATS = [
    FP12_E6M5,
    FP12_E6M5.with_subnormals(False),
    FP16,
    FP16.with_subnormals(False),
    FP8_E5M2,
    FP32,
    FPFormat(8, 7),
]


def _stress_sample(rng):
    """Values spanning normals, subnormals, deep tail, specials, zeros."""
    return np.concatenate([
        rng.normal(size=3000),
        rng.normal(size=500) * 1e-9,
        rng.normal(size=500) * 1e-12,
        rng.normal(size=500) * 1e-40,
        rng.normal(size=300) * 1e9,
        rng.normal(size=300) * 1e38,
        [0.0, -0.0, np.inf, -np.inf, np.nan, 5e-324, -5e-324],
    ])


def _assert_same(a, b):
    assert np.array_equal(a, b, equal_nan=True)
    finite = np.isfinite(a)
    assert np.array_equal(np.signbit(a[finite]), np.signbit(b[finite]))


@pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
class TestBitExactEquivalence:
    def test_nearest(self, fmt, rng):
        values = _stress_sample(rng)
        _assert_same(quantize(values, fmt, "nearest"),
                     quantize_fast(values, fmt, "nearest"))

    @pytest.mark.parametrize("rbits", [4, 9, 13])
    def test_stochastic(self, fmt, rng, rbits):
        if rbits >= 52 - fmt.mantissa_bits:
            pytest.skip("fast path delegates for deep rbits")
        values = _stress_sample(rng)
        draws = rng.integers(0, 1 << rbits, size=values.shape)
        _assert_same(
            quantize(values, fmt, "stochastic", rbits=rbits,
                     random_ints=draws),
            quantize_fast(values, fmt, "stochastic", rbits=rbits,
                          random_ints=draws),
        )

    def test_saturate(self, fmt, rng):
        values = _stress_sample(rng)
        _assert_same(quantize(values, fmt, "nearest", saturate=True),
                     quantize_fast(values, fmt, "nearest", saturate=True))


class TestFallbacks:
    def test_directed_modes_delegate(self, rng):
        values = rng.normal(size=100)
        _assert_same(quantize(values, FP16, "up"),
                     quantize_fast(values, FP16, "up"))

    def test_exact_sr_delegates(self, rng):
        # rbits=None -> exact SR via reference (statistically unbiased).
        values = rng.uniform(1, 2, size=5000)
        out = quantize_fast(values, FPFormat(5, 4), "stochastic",
                            rng=np.random.default_rng(0))
        assert abs(np.mean(out - values)) < 1e-3

    def test_fp32_target_near_rbits_limit(self, rng):
        # r = 27 with M = 23: 27 < 52 - 23 = 29, still on the fast path.
        values = rng.normal(size=256)
        draws = rng.integers(0, 1 << 27, size=values.shape)
        _assert_same(
            quantize(values, FP32, "stochastic", rbits=27, random_ints=draws),
            quantize_fast(values, FP32, "stochastic", rbits=27,
                          random_ints=draws),
        )

    def test_requires_randomness(self):
        with pytest.raises(ValueError):
            quantize_fast(np.ones(4), FP16, "stochastic", rbits=5)


class TestDeepTail:
    def test_values_below_min_subnormal(self):
        fmt = FP12_E6M5
        # Just below/around the smallest subnormal: reference semantics.
        values = np.array([
            fmt.min_subnormal * 0.49, fmt.min_subnormal * 0.51,
            -fmt.min_subnormal * 1.5, fmt.min_subnormal,
        ])
        _assert_same(quantize(values, fmt, "nearest"),
                     quantize_fast(values, fmt, "nearest"))


class TestFusedOutPath:
    """quantize_fast(out=...) — the engine hot path — must match the
    allocating path bit for bit, write in place, and not allocate the
    result."""

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    def test_nearest_matches_allocating_path(self, fmt, rng):
        from repro.fp.fastquant import QuantizeWorkspace

        values = np.ascontiguousarray(_stress_sample(rng))
        out = np.empty_like(values)
        ws = QuantizeWorkspace(values.shape)
        got = quantize_fast(values, fmt, "nearest", out=out, workspace=ws)
        assert got is out
        _assert_same(out, quantize_fast(values, fmt, "nearest"))

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    @pytest.mark.parametrize("rbits", [4, 9, 13])
    @pytest.mark.parametrize("saturate", [False, True])
    def test_stochastic_matches_allocating_path(self, fmt, rng, rbits,
                                                saturate):
        values = np.ascontiguousarray(_stress_sample(rng))
        draws = rng.integers(0, 1 << rbits, size=values.shape,
                             dtype=np.uint64)
        out = np.empty_like(values)
        got = quantize_fast(values, fmt, "stochastic", rbits=rbits,
                            random_ints=draws, saturate=saturate, out=out)
        assert got is out
        _assert_same(out, quantize_fast(values, fmt, "stochastic",
                                        rbits=rbits, random_ints=draws,
                                        saturate=saturate))

    def test_uint32_draws_supported(self, rng):
        values = np.ascontiguousarray(rng.normal(size=256))
        draws = rng.integers(0, 512, size=values.shape, dtype=np.uint64)
        out32 = np.empty_like(values)
        out64 = np.empty_like(values)
        quantize_fast(values, FP12_E6M5, "stochastic", rbits=9,
                      random_ints=draws.astype(np.uint32), out=out32)
        quantize_fast(values, FP12_E6M5, "stochastic", rbits=9,
                      random_ints=draws, out=out64)
        _assert_same(out32, out64)

    def test_out_path_rejects_aliasing_and_bad_shapes(self, rng):
        values = np.ascontiguousarray(rng.normal(size=16))
        with pytest.raises(ValueError):
            quantize_fast(values, FP12_E6M5, "nearest", out=values)
        with pytest.raises(ValueError):
            quantize_fast(values, FP12_E6M5, "nearest",
                          out=np.empty(8))
        with pytest.raises(ValueError):
            quantize_fast(values[::2], FP12_E6M5, "nearest",
                          out=np.empty(8))

    def test_out_path_falls_back_for_unsupported_modes(self, rng):
        values = np.ascontiguousarray(rng.normal(size=64))
        out = np.empty_like(values)
        got = quantize_fast(values, FP12_E6M5, "toward_zero", out=out)
        assert got is out
        _assert_same(out, quantize(values, FP12_E6M5, "toward_zero"))
        # wide format also delegates through the reference into out
        got = quantize_fast(values, FP32, "nearest", out=out)
        _assert_same(out, quantize(values, FP32, "nearest"))

    def test_workspace_reuse_across_calls(self, rng):
        from repro.fp.fastquant import QuantizeWorkspace

        ws = QuantizeWorkspace((128,))
        out = np.empty(128)
        for trial in range(4):
            values = np.ascontiguousarray(rng.normal(size=128) *
                                          10.0 ** (3 * trial - 5))
            quantize_fast(values, FP12_E6M5, "nearest", out=out,
                          workspace=ws)
            _assert_same(out, quantize_fast(values, FP12_E6M5, "nearest"))
