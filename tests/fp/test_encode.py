"""Bit-pattern encode/decode tests."""

import math

import numpy as np
import pytest

from repro.fp.encode import (
    all_finite_values,
    decode,
    decode_one,
    encode,
    encode_one,
    split_fields,
)
from repro.fp.formats import FP8_E4M3, FP8_E5M2, FP12_E6M5, FP16, FPFormat


class TestRoundTrip:
    def test_all_patterns_roundtrip_e4m3(self):
        fmt = FP8_E4M3
        for bits in range(1 << fmt.total_bits):
            value = decode_one(bits, fmt)
            if value != value:  # NaN patterns are many-to-one
                continue
            assert encode_one(value, fmt) == bits or value == 0.0

    def test_all_values_roundtrip(self, small_format):
        for value in all_finite_values(small_format):
            assert decode_one(encode_one(float(value), small_format),
                              small_format) == value

    def test_vectorized_matches_scalar(self, rng):
        fmt = FP12_E6M5
        values = all_finite_values(fmt)
        picks = rng.choice(values, size=64)
        bits = encode(picks, fmt)
        assert np.array_equal(decode(bits, fmt), picks)


class TestSpecialPatterns:
    def test_zero_patterns(self):
        fmt = FP16
        assert encode_one(0.0, fmt) == 0
        assert encode_one(-0.0, fmt) == 1 << 15
        assert decode_one(0, fmt) == 0.0

    def test_infinity_patterns(self):
        fmt = FP16
        inf_bits = encode_one(float("inf"), fmt)
        sign, exp_field, frac = split_fields(inf_bits, fmt)
        assert exp_field == 31 and frac == 0 and sign == 0
        assert decode_one(inf_bits, fmt) == float("inf")

    def test_nan_pattern(self):
        fmt = FP16
        nan_bits = encode_one(float("nan"), fmt)
        value = decode_one(nan_bits, fmt)
        assert value != value

    def test_subnormal_encoding(self):
        fmt = FP8_E5M2
        bits = encode_one(fmt.min_subnormal, fmt)
        sign, exp_field, frac = split_fields(bits, fmt)
        assert exp_field == 0 and frac == 1


class TestErrors:
    def test_unrepresentable_raises(self):
        with pytest.raises(ValueError):
            encode_one(1.0 + 2 ** -20, FP8_E5M2)

    def test_overflow_raises(self):
        with pytest.raises(ValueError):
            encode_one(1e10, FP8_E5M2)

    def test_bad_bit_pattern_raises(self):
        with pytest.raises(ValueError):
            split_fields(1 << 20, FP16)


class TestAllFiniteValues:
    def test_count_with_subnormals(self):
        fmt = FPFormat(4, 3)
        values = all_finite_values(fmt)
        # per sign: 14 exponents x 8 + 7 subnormals + zero, deduped across sign
        assert len(values) == 2 * (14 * 8 + 7) + 1

    def test_count_without_subnormals(self):
        fmt = FPFormat(4, 3, subnormals=False)
        values = all_finite_values(fmt)
        assert len(values) == 2 * (14 * 8) + 1

    def test_sorted_and_unique(self, small_format):
        values = all_finite_values(small_format)
        assert np.all(np.diff(values) > 0)

    def test_positive_only(self, small_format):
        values = all_finite_values(small_format, positive_only=True)
        assert np.all(values >= 0)

    def test_symmetric(self, small_format):
        values = all_finite_values(small_format)
        assert np.array_equal(values, -values[::-1])
