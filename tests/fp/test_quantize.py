"""Unit tests for the vectorized quantizer against the scalar reference."""

import numpy as np
import pytest

from repro.fp.formats import FP8_E5M2, FP12_E6M5, FP16, FPFormat
from repro.fp.quantize import Quantizer, identity_quantizer, quantize
from repro.fp.rounding import round_float


def _sample(rng, count=400):
    return np.concatenate([
        rng.normal(size=count),
        rng.normal(size=count // 4) * 1e-8,
        rng.normal(size=count // 4) * 1e8,
    ])


class TestAgainstScalarReference:
    @pytest.mark.parametrize("mode", ["nearest", "toward_zero", "up", "down"])
    def test_deterministic_modes_match(self, rng, any_format, mode):
        values = _sample(rng)
        vectorized = quantize(values, any_format, mode)
        for v, q in zip(values, vectorized):
            assert round_float(float(v), any_format, mode) == q

    def test_rbit_sr_matches_with_same_draws(self, rng, any_format):
        rbits = 7
        values = _sample(rng, 200)
        draws = rng.integers(0, 1 << rbits, size=values.shape)
        vectorized = quantize(values, any_format, "stochastic",
                              rbits=rbits, random_ints=draws)
        for v, d, q in zip(values, draws, vectorized):
            expected = round_float(float(v), any_format, "stochastic",
                                   random_int=int(d), rbits=rbits)
            assert expected == q


class TestIdempotence:
    def test_quantize_twice_is_identity(self, rng, any_format):
        once = quantize(_sample(rng), any_format, "nearest")
        twice = quantize(once, any_format, "nearest")
        assert np.array_equal(once, twice)

    def test_sr_fixed_point_on_grid(self, rng, any_format):
        on_grid = quantize(_sample(rng), any_format, "nearest")
        again = quantize(on_grid, any_format, "stochastic", rng=rng, rbits=9)
        assert np.array_equal(on_grid, again)


class TestSpecialValues:
    def test_nan_inf_passthrough(self):
        values = np.array([np.nan, np.inf, -np.inf])
        out = quantize(values, FP16, "nearest")
        assert np.isnan(out[0])
        assert out[1] == np.inf and out[2] == -np.inf

    def test_signed_zeros(self):
        out = quantize(np.array([0.0, -0.0]), FP16, "nearest")
        assert not np.signbit(out[0])
        assert np.signbit(out[1])

    def test_overflow_to_inf(self):
        out = quantize(np.array([1e30, -1e30]), FP12_E6M5, "nearest")
        assert out[0] == np.inf and out[1] == -np.inf

    def test_saturate_clamps(self):
        out = quantize(np.array([1e30, -1e30]), FP12_E6M5, "nearest",
                       saturate=True)
        assert out[0] == FP12_E6M5.max_value
        assert out[1] == -FP12_E6M5.max_value


class TestFlushToZero:
    def test_subnormals_flushed_without_support(self):
        fmt = FP12_E6M5.with_subnormals(False)
        tiny = np.array([fmt.min_normal / 3, -fmt.min_normal / 3])
        out = quantize(tiny, fmt, "nearest")
        assert np.all(out == 0.0)
        assert np.signbit(out[1])

    def test_subnormals_kept_with_support(self):
        fmt = FP12_E6M5
        tiny = np.array([fmt.min_subnormal * 5])
        out = quantize(tiny, fmt, "nearest")
        assert out[0] == fmt.min_subnormal * 5


class TestStochasticStatistics:
    def test_sr_is_unbiased_on_average(self, rng):
        fmt = FPFormat(5, 4)
        values = rng.uniform(1.0, 2.0, size=20000)
        out = quantize(values, fmt, "stochastic", rng=rng, rbits=16)
        bias = np.mean(out - values)
        assert abs(bias) < fmt.machine_eps / 20

    def test_rn_rounds_to_nearest_by_magnitude(self, rng):
        fmt = FPFormat(5, 4)
        values = rng.uniform(-4, 4, size=2000)
        out = quantize(values, fmt, "nearest")
        ulps = np.array([fmt.ulp(v) for v in values])
        assert np.all(np.abs(out - values) <= ulps / 2 + 1e-15)

    def test_low_rbits_quantizes_probability(self, rng):
        # With r=1 only eps_x >= 1/2 can ever round up.
        fmt = FPFormat(5, 4)
        value = 1.0 + fmt.machine_eps / 4  # eps_x = 1/4 < 1/2
        out = quantize(np.full(500, value), fmt, "stochastic", rng=rng,
                       rbits=1)
        assert np.all(out == 1.0)


class TestQuantizerObject:
    def test_identity(self, rng):
        q = identity_quantizer()
        values = rng.normal(size=10)
        assert np.array_equal(q(values), values)

    def test_callable_policy(self, rng):
        q = Quantizer(FP8_E5M2, "nearest")
        out = q(rng.normal(size=50))
        assert np.array_equal(out, quantize(out, FP8_E5M2, "nearest"))

    def test_validation_errors(self, rng):
        with pytest.raises(ValueError):
            quantize(np.ones(3), FP16, "bogus")
        with pytest.raises(ValueError):
            quantize(np.ones(3), FP16, "stochastic", rng=rng, rbits=99)
        with pytest.raises(ValueError):
            quantize(np.ones(3), FP16, "stochastic")  # no randomness source
