"""Summation-algorithm tests."""

import numpy as np
import pytest

from repro.fp.formats import FP12_E6M5, FP16, FPFormat
from repro.fp.summation import (
    ALGORITHMS,
    RoundingPolicy,
    blocked_sum,
    kahan_sum,
    pairwise_sum,
    recursive_sum,
    two_precision_sum,
)


class TestRoundingPolicy:
    def test_exact_policy_is_identity(self, rng):
        policy = RoundingPolicy.exact()
        values = rng.normal(size=10)
        assert np.array_equal(policy.round(values), values)

    def test_rn_policy_quantizes(self):
        policy = RoundingPolicy.rn(FP12_E6M5)
        assert policy.round_scalar(1.0 + 1e-6) == 1.0

    def test_sr_policy_deterministic_per_seed(self):
        a = RoundingPolicy.sr(FP12_E6M5, 9, seed=3)
        b = RoundingPolicy.sr(FP12_E6M5, 9, seed=3)
        x = np.full(100, 1.0 + FP12_E6M5.machine_eps / 3)
        assert np.array_equal(a.round(x), b.round(x))


class TestExactAgreement:
    """With the exact policy every algorithm returns the true sum."""

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_exact_policy(self, rng, name):
        values = rng.normal(size=257)
        got = ALGORITHMS[name](values, RoundingPolicy.exact())
        assert got == pytest.approx(values.sum(), rel=1e-12)

    def test_empty_and_single(self):
        policy = RoundingPolicy.rn(FP16)
        assert recursive_sum(np.array([]), policy) == 0.0
        assert pairwise_sum(np.array([]), policy) == 0.0
        assert pairwise_sum(np.array([1.5]), policy) == 1.5
        assert blocked_sum(np.array([1.5]), policy) == 1.5


class TestStagnationOrdering:
    """The motivating comparison: recursive RN is the worst performer on
    the uniform-terms workload; structure or SR rescues it."""

    @pytest.fixture(scope="class")
    def workload(self):
        return np.random.default_rng(5).random(3000)

    def test_recursive_rn_stagnates(self, workload):
        fmt = FP12_E6M5
        exact = workload.sum()
        got = recursive_sum(workload, RoundingPolicy.rn(fmt))
        assert got < 0.5 * exact  # badly stagnated

    def test_pairwise_rescues_rn(self, workload):
        fmt = FP12_E6M5
        exact = workload.sum()
        got = pairwise_sum(workload, RoundingPolicy.rn(fmt))
        assert abs(got - exact) / exact < 0.05

    def test_blocked_beats_recursive(self, workload):
        fmt = FP12_E6M5
        exact = workload.sum()
        rec = recursive_sum(workload, RoundingPolicy.rn(fmt))
        blk = blocked_sum(workload, RoundingPolicy.rn(fmt), block=32)
        assert abs(blk - exact) < abs(rec - exact)

    def test_sr_rescues_recursive(self, workload):
        """SR keeps tracking the sum where RN stagnates.  Single-run SR
        error at n=3000 in E6M5 is a few ulp(sum) * sqrt(n) ~ 10%, far
        under RN's >50% stagnation loss."""
        fmt = FP12_E6M5
        exact = workload.sum()
        sr = recursive_sum(workload, RoundingPolicy.sr(fmt, 13, seed=1))
        rn = recursive_sum(workload, RoundingPolicy.rn(fmt))
        assert abs(sr - exact) / exact < 0.25
        assert abs(sr - exact) < abs(rn - exact) / 2

    def test_kahan_beats_plain_recursive(self, workload):
        fmt = FP16
        exact = workload.sum()
        plain = recursive_sum(workload, RoundingPolicy.rn(fmt))
        compensated = kahan_sum(workload, RoundingPolicy.rn(fmt))
        assert abs(compensated - exact) <= abs(plain - exact)

    def test_two_precision_baseline(self, workload):
        exact = workload.sum()
        got = two_precision_sum(workload, RoundingPolicy.rn(FPFormat(8, 23)),
                                RoundingPolicy.rn(FP12_E6M5))
        assert abs(got - exact) / exact < 0.02


class _SpyPolicy:
    """Wraps a policy, recording how many elements each round touches."""

    def __init__(self, inner):
        self.inner = inner
        self.sizes = []

    def round(self, values):
        self.sizes.append(int(np.size(values)))
        return self.inner.round(values)


class _SpyVectorPolicy(_SpyPolicy):
    """Spy that also forwards the scalar path (recursive/blocked/kahan)."""

    def round_scalar(self, value):
        self.sizes.append(1)
        return self.inner.round_scalar(value)


class TestPairwiseTreeStructure:
    """The odd tail is carried unrounded (wiring, not an adder), exactly
    like :class:`repro.emu.engine.PairwiseEngine`."""

    @pytest.mark.parametrize("n", [2, 3, 5, 6, 7, 17, 37, 100, 257])
    def test_n_minus_one_rounded_additions(self, rng, n):
        """A tree over n leaves has exactly n-1 two-input adders; the
        zero-padding bug rounded extra spurious ``x + 0.0`` elements."""
        spy = _SpyPolicy(RoundingPolicy.rn(FP12_E6M5))
        pairwise_sum(rng.normal(size=n), spy)
        # sizes[0] is the input cast; the rest are adder outputs
        assert sum(spy.sizes[1:]) == n - 1

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 9, 13, 37, 64, 101])
    def test_matches_pairwise_engine_on_rn(self, rng, n):
        """fp.summation.pairwise_sum and PairwiseEngine.reduce agree on
        on-grid inputs under RN configs."""
        from repro.emu.config import GemmConfig
        from repro.emu.engine import PairwiseEngine

        for fmt in (FP12_E6M5, FP16):
            policy = RoundingPolicy.rn(fmt)
            values = policy.round(rng.normal(size=n))  # on-grid leaves
            got = pairwise_sum(values, policy)
            config = GemmConfig(acc_format=fmt, rounding="nearest")
            want = PairwiseEngine().reduce(values.reshape(n, 1), config)
            assert got == float(np.asarray(want).reshape(-1)[0])


class TestUniformInputQuantization:
    """Every algorithm quantizes its inputs into the policy's format
    exactly once, up front, so ``ALGORITHMS`` comparisons are
    like-for-like (regression: only ``pairwise_sum`` used to cast)."""

    def test_all_algorithms_agree_on_representable_exact_sums(self, rng):
        """On already-representable inputs whose every partial sum is
        exact, accumulation order cannot matter: all algorithms return
        the exact sum."""
        from repro.fp.summation import ALGORITHMS

        values = rng.integers(-20, 21, size=48).astype(np.float64)
        exact = float(values.sum())
        policy = RoundingPolicy.rn(FP16)   # p=11 holds every partial
        results = {name: alg(values, policy)
                   for name, alg in ALGORITHMS.items()}
        assert all(r == exact for r in results.values()), results

    def test_input_cast_applied_by_every_algorithm(self):
        """Off-grid inputs are rounded before any addition.  With
        a = 1.0 and b = 1 + 1/32 + 1/1024 in E6M5: casting b first
        gives round(1 + 1.03125) = 2.0 (tie to even), while the old
        uncast recursive path computed round(1 + 1.033203125) = 2.0625."""
        from repro.fp.summation import ALGORITHMS

        values = np.array([1.0, 1.0 + 1.0 / 32 + 1.0 / 1024])
        policy = RoundingPolicy.rn(FP12_E6M5)
        results = {name: alg(values, policy)
                   for name, alg in ALGORITHMS.items()}
        assert all(r == 2.0 for r in results.values()), results

    def test_every_algorithm_casts_the_full_input_first(self, rng):
        """The first ``policy.round`` call of every algorithm is the
        one-shot full-array input cast."""
        from repro.fp.summation import ALGORITHMS

        n = 33
        values = rng.normal(size=n)
        for name, algorithm in ALGORITHMS.items():
            spy = _SpyVectorPolicy(RoundingPolicy.rn(FP12_E6M5))
            algorithm(values, spy)
            assert spy.sizes[0] == n, name


class TestBlockedValidation:
    def test_invalid_block_raises(self):
        with pytest.raises(ValueError):
            blocked_sum(np.ones(4), RoundingPolicy.exact(), block=0)

    def test_block_equals_n_is_recursive(self, rng):
        values = rng.random(64)
        policy = RoundingPolicy.rn(FP16)
        assert blocked_sum(values, policy, block=64) == pytest.approx(
            recursive_sum(values, policy))
