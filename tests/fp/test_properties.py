"""Hypothesis property tests for the floating-point core."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.fastquant import quantize_fast
from repro.fp.formats import FPFormat
from repro.fp.quantize import quantize
from repro.fp.rounding import round_float, rounding_candidates

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e30, max_value=1e30
)

format_strategy = st.builds(
    FPFormat,
    st.integers(min_value=3, max_value=8),
    st.integers(min_value=1, max_value=23),
    st.booleans(),
)


@given(finite_floats, format_strategy)
@settings(max_examples=300, deadline=None)
def test_rn_result_is_nearest_representable(value, fmt):
    """RN output is one of the two candidates and no farther than half ulp."""
    result = round_float(value, fmt, "nearest")
    if result in (float("inf"), float("-inf")) or result == 0.0:
        return
    down, up, _ = rounding_candidates(value, fmt)
    from fractions import Fraction

    result_fraction = Fraction(result)
    assert result_fraction in (down, up) or abs(value) < fmt.min_normal
    assert abs(result_fraction - Fraction(value)) <= \
        fmt.exact_ulp(Fraction(value)) / 2


@given(finite_floats, format_strategy,
       st.integers(min_value=3, max_value=20),
       st.integers(min_value=0))
@settings(max_examples=300, deadline=None)
def test_sr_result_is_a_candidate(value, fmt, rbits, seed):
    """SR returns one of the two neighbors (or 0/inf at the edges)."""
    random_int = seed % (1 << rbits)
    result = round_float(value, fmt, "stochastic", random_int=random_int,
                         rbits=rbits)
    if result in (float("inf"), float("-inf")) or result == 0.0:
        return
    down, up, _ = rounding_candidates(value, fmt)
    from fractions import Fraction

    assert Fraction(result) in (down, up)


@given(st.lists(finite_floats, min_size=1, max_size=64), format_strategy)
@settings(max_examples=200, deadline=None)
def test_fast_quantizer_matches_reference_nearest(values, fmt):
    arr = np.array(values)
    ref = quantize(arr, fmt, "nearest")
    fast = quantize_fast(arr, fmt, "nearest")
    assert np.array_equal(ref, fast, equal_nan=True)


@given(st.lists(finite_floats, min_size=1, max_size=64),
       st.integers(min_value=3, max_value=13),
       st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=200, deadline=None)
def test_fast_quantizer_matches_reference_sr(values, rbits, seed):
    fmt = FPFormat(6, 5, subnormals=bool(seed % 2))
    arr = np.array(values)
    rng = np.random.default_rng(seed)
    draws = rng.integers(0, 1 << rbits, size=arr.shape)
    ref = quantize(arr, fmt, "stochastic", rbits=rbits, random_ints=draws)
    fast = quantize_fast(arr, fmt, "stochastic", rbits=rbits,
                         random_ints=draws)
    assert np.array_equal(ref, fast, equal_nan=True)


@given(finite_floats, format_strategy)
@settings(max_examples=200, deadline=None)
def test_monotonicity_of_rn(value, fmt):
    """RN is monotone: quantizing a larger value never gives a smaller one."""
    bigger = np.nextafter(value, np.inf)
    q1 = round_float(value, fmt, "nearest")
    q2 = round_float(bigger, fmt, "nearest")
    assert q2 >= q1


@given(st.lists(finite_floats, min_size=1, max_size=32), format_strategy)
@settings(max_examples=150, deadline=None)
def test_quantization_error_bounded_by_ulp(values, fmt):
    arr = np.array(values)
    out = quantize(arr, fmt, "toward_zero")
    for v, q in zip(arr, out):
        if not np.isfinite(q):
            continue
        if abs(v) < fmt.min_normal and not fmt.subnormals:
            assert q == 0.0
            continue
        assert abs(v - q) < fmt.ulp(v) + 1e-300
        assert abs(q) <= abs(v)  # truncation never grows magnitude
