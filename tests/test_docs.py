"""The documentation suite exists, links resolve, and quoted commands
are not stale (same checks CI's docs job runs via tools/check_docs.py)."""

import importlib.util
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "tools" / "check_docs.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_pages_exist():
    for name in ("docs/architecture.md", "docs/reproducing-tables.md",
                 "docs/extending.md", "README.md", "DESIGN.md"):
        assert (REPO / name).exists(), f"missing documentation page {name}"


def test_readme_links_every_docs_page():
    readme = (REPO / "README.md").read_text()
    for name in ("docs/architecture.md", "docs/reproducing-tables.md",
                 "docs/extending.md"):
        assert name in readme, f"README.md does not link {name}"


def test_design_documents_attention_datapath():
    design = (REPO / "DESIGN.md").read_text()
    assert "## 6. The attention datapath" in design
    assert "b * n_heads + h" in design


def test_links_and_commands_are_fresh(capsys):
    checker = _load_checker()
    problems = checker.main()
    out = capsys.readouterr().out
    assert problems == 0, f"stale documentation:\n{out}"


def test_slugify_matches_github_convention():
    checker = _load_checker()
    assert checker.github_slug("## Adding an accumulation engine"
                               .lstrip("# ")) == \
        "adding-an-accumulation-engine"
    assert checker.github_slug("Table I — ASIC cost") == "table-i--asic-cost"
    assert checker.github_slug("`code` heads") == "code-heads"
