"""Cross-module integration tests: the full pipeline end to end."""

import numpy as np
import pytest

from repro.data import loaders_for, make_cifar10_like
from repro.emu import GemmConfig, QuantizedGemm
from repro.fp.formats import FP12_E6M5, FP16
from repro.models import MLP, SimpleCNN
from repro.nn import Trainer


@pytest.fixture(scope="module")
def tiny_dataset():
    return make_cifar10_like(n_train=256, n_test=96, image_size=8, seed=0)


def _train(model_factory, gemm_config, dataset, epochs=5, lr=0.08):
    gemm = QuantizedGemm(gemm_config) if gemm_config is not None else None
    model = model_factory(gemm)
    train_loader, test_loader = loaders_for(dataset, batch_size=128, seed=0)
    trainer = Trainer(model, lr=lr, epochs=epochs, weight_decay=1e-4)
    return trainer.fit(train_loader, test_loader)


class TestEndToEndTraining:
    """Every Table III configuration kind trains above chance."""

    @pytest.mark.parametrize("config_name,config", [
        ("fp32", None),
        ("rn_fp16", GemmConfig.rn(FP16)),
        ("rn_e6m5", GemmConfig.rn(FP12_E6M5)),
        ("sr_r9_sub", GemmConfig.sr(9, subnormals=True, seed=3)),
        ("sr_r13_nosub", GemmConfig.sr(13, subnormals=False, seed=3)),
    ])
    def test_mlp_trains_above_chance(self, tiny_dataset, config_name, config):
        result = _train(
            lambda g: MLP(3 * 8 * 8, [48, 24], 10, gemm=g, seed=1),
            config, tiny_dataset,
        )
        assert result.final_accuracy > 0.14  # chance is 0.10

    def test_quantized_cnn_trains(self, tiny_dataset):
        result = _train(
            lambda g: SimpleCNN(10, width=4, gemm=g, seed=1),
            GemmConfig.sr(11, subnormals=False, seed=3),
            tiny_dataset, epochs=5,
        )
        # A width-4 CNN on 256 samples learns slowly; the integration
        # check is that the quantized pipeline makes progress at all.
        assert result.final_accuracy > 0.08
        assert result.history[-1].train_loss < result.history[0].train_loss
        assert all(np.isfinite(s.train_loss) for s in result.history)

    def test_loss_scaler_engages_without_divergence(self, tiny_dataset):
        result = _train(
            lambda g: MLP(3 * 8 * 8, [32], 10, gemm=g, seed=1),
            GemmConfig.sr(9, subnormals=False, seed=3),
            tiny_dataset, epochs=3,
        )
        final = result.history[-1]
        assert final.loss_scale >= 1.0
        assert final.skipped_steps < 10


class TestHardwareSoftwareConsistency:
    """The cost model and the behavioral model describe the same design."""

    def test_rbits_consistency(self):
        from repro.rtl import MACConfig, MACUnit, build_adder_netlist

        config = MACConfig(6, 5, "sr_eager", False, 9)
        unit = MACUnit(config, seed=0)
        netlist = build_adder_netlist(config)
        assert unit.lfsr.width == config.rbits
        staging = [c for c in netlist.components()
                   if c.kind == "random_staging"]
        assert staging and staging[0].width == config.rbits

    def test_gemm_emulation_matches_eager_unit_statistics(self, rng):
        """Emulated GEMM and the scalar eager MAC agree in distribution:
        same inputs, same format -> means within Monte Carlo noise."""
        from repro.fp.quantize import quantize
        from repro.fp.formats import FP8_E5M2
        from repro.emu import matmul
        from repro.rtl import MACConfig, MACUnit

        a = quantize(rng.normal(size=24), FP8_E5M2)
        b = quantize(rng.normal(size=24), FP8_E5M2)
        gemm_samples = [
            matmul(a.reshape(1, -1), b.reshape(-1, 1),
                   GemmConfig.sr(9, subnormals=False, seed=s))[0, 0]
            for s in range(60)
        ]
        mac_samples = [
            MACUnit(MACConfig(6, 5, "sr_eager", False, 9), seed=s).dot(a, b)
            for s in range(1, 61)
        ]
        assert np.mean(gemm_samples) == pytest.approx(
            np.mean(mac_samples), abs=0.08)


class TestDeterminism:
    """Whole-pipeline reproducibility given fixed seeds."""

    def test_training_run_is_reproducible(self, tiny_dataset):
        def run():
            return _train(
                lambda g: MLP(3 * 8 * 8, [32], 10, gemm=g, seed=1),
                GemmConfig.sr(9, subnormals=False, seed=7),
                tiny_dataset, epochs=2,
            )

        first = run()
        second = run()
        assert [s.train_loss for s in first.history] == \
            [s.train_loss for s in second.history]
        assert first.final_accuracy == second.final_accuracy
