"""Error-analysis tests: the statistical claims behind Sec. II."""

import numpy as np
import pytest

from repro.analysis import (
    bias_estimate,
    error_growth_curve,
    growth_exponent,
    rbits_bias_curve,
    stagnation_curve,
    stagnation_threshold,
    variance_reduction_over_algorithms,
)
from repro.fp.formats import FP12_E6M5, FP16
from repro.fp.summation import RoundingPolicy


class TestStagnation:
    def test_threshold_formula(self):
        fmt = FP12_E6M5
        term = 0.25
        # acc > term * 2^p: increments below half-ulp are dropped
        assert stagnation_threshold(fmt, term) == term * 2 ** 6

    def test_rn_curve_plateaus_at_threshold(self):
        fmt = FP12_E6M5
        term = 1.0 / 64
        curve = stagnation_curve(fmt, term, steps=4000,
                                 policy=RoundingPolicy.rn(fmt))
        threshold = stagnation_threshold(fmt, term)
        assert curve[-1] == curve[-2]  # flat at the end
        assert curve[-1] <= threshold * 1.01
        assert curve[-1] >= threshold * 0.45  # reached the plateau region

    def test_no_duplicate_final_sample(self):
        """Regression: when the last step landed on a sampling point the
        final accumulator was appended twice."""
        fmt = FP12_E6M5
        policy = RoundingPolicy.rn(fmt)
        # steps - 1 = 128 is a multiple of sample_every: samples at
        # steps 0, 64, 128 and nothing extra.
        curve = stagnation_curve(fmt, 0.25, steps=129, policy=policy,
                                 sample_every=64)
        assert len(curve) == 3
        # off-boundary: samples at 0, 64, 128 plus the final step 129
        curve = stagnation_curve(fmt, 0.25, steps=130, policy=policy,
                                 sample_every=64)
        assert len(curve) == 4
        # the empty curve still reports the (zero) accumulator once
        assert stagnation_curve(fmt, 0.25, steps=0, policy=policy) == [0.0]

    def test_sr_curve_does_not_plateau(self):
        fmt = FP12_E6M5
        term = 1.0 / 64
        curve = stagnation_curve(fmt, term, steps=4000,
                                 policy=RoundingPolicy.sr(fmt, 13, seed=2))
        exact = 4000 * term
        assert curve[-1] > 0.7 * exact


class TestErrorGrowth:
    @pytest.fixture(scope="class")
    def curves(self):
        return error_growth_curve(FP12_E6M5, sizes=[64, 256, 1024, 4096],
                                  rbits=13, trials=4, seed=1)

    def test_sr_beats_rn_at_scale(self, curves):
        rn_final = curves["rn"][-1].relative_error
        sr_final = curves["sr"][-1].relative_error
        assert sr_final < rn_final / 3

    def test_rn_error_grows_faster(self, curves):
        rn_slope = growth_exponent(curves["rn"])
        sr_slope = growth_exponent(curves["sr"])
        assert rn_slope > sr_slope

    def test_sr_growth_is_sublinear(self, curves):
        # Probabilistic analysis: SR forward error ~ sqrt(n) * u, so the
        # *relative* error slope vs n should be well below 1.
        assert growth_exponent(curves["sr"]) < 0.75


class TestBias:
    def test_sr_unbiased_with_large_r(self):
        fmt = FP12_E6M5
        value = 1.0 + fmt.machine_eps / 3
        bias = bias_estimate(fmt, value, rbits=13, trials=8000, seed=0)
        assert abs(bias) < fmt.machine_eps / 25

    def test_small_r_truncation_bias(self):
        """The Table III mechanism, measured: once eps_x < 2^-r the
        rounding degenerates to truncation with bias -eps_x * ulp."""
        fmt = FP12_E6M5
        value = 1.0 + fmt.machine_eps / 64  # eps_x = 1/64
        biases = rbits_bias_curve(fmt, value, rbits_values=[4, 9, 13],
                                  trials=4000, seed=0)
        assert biases[4] == pytest.approx(-fmt.machine_eps / 64, rel=1e-9)
        assert abs(biases[13]) < fmt.machine_eps / 64


class TestVarianceByAlgorithm:
    def test_short_chains_reduce_sr_variance(self):
        stds = variance_reduction_over_algorithms(FP16, n=512, rbits=11,
                                                  trials=10, seed=3)
        assert set(stds) == {"recursive", "pairwise", "blocked", "kahan"}
        assert stds["pairwise"] <= stds["recursive"]
