"""reprolint: every rule, suppressions, whitelists, baseline, self-run.

Three layers:

* **fixture snippets** — positive/negative source fragments per rule,
  linted as virtual files so the policy's path whitelists engage;
* **seeded mutations** — the acceptance checks: insert an ambient
  ``np.random`` call, a raw ``stream.integers`` outside the whitelist,
  and an unlocked write to a guarded attribute into *real* repo files
  and require exactly the expected finding;
* **the repo-wide self-run** — ``src benchmarks tools examples`` must
  be clean, which is what makes the pass a tier-1 gate.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.reprolint import (
    Baseline,
    Policy,
    all_rules,
    lint_source,
    run_paths,
)
from repro.analysis.reprolint.cli import main as cli_main
from repro.analysis.reprolint.suppress import Suppressions

REPO = Path(__file__).resolve().parent.parent.parent

#: Virtual paths: library code (no whitelists) vs whitelisted scopes.
LIB = "src/repro/somepkg/somemodule.py"
BENCH = "benchmarks/bench_something.py"


def rules_of(source, path=LIB):
    result = lint_source(source, path)
    return [f.rule for f in result.findings]


def findings_of(source, path=LIB):
    return lint_source(source, path).findings


# ----------------------------------------------------------------------
# DET-RANDOM
# ----------------------------------------------------------------------
class TestAmbientRandomness:
    def test_module_level_numpy_random_flagged(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert rules_of(src) == ["DET-RANDOM"]

    def test_seedless_default_rng_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules_of(src) == ["DET-RANDOM"]
        src = "import numpy as np\nrng = np.random.default_rng(None)\n"
        assert rules_of(src) == ["DET-RANDOM"]

    def test_seeded_default_rng_clean(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert rules_of(src) == []

    def test_explicit_generator_construction_clean(self):
        src = ("import numpy as np\n"
               "g = np.random.Generator(np.random.PCG64(\n"
               "    np.random.SeedSequence(3)))\n")
        assert rules_of(src) == []

    def test_stdlib_random_flagged(self):
        src = "import random\nx = random.random()\n"
        assert rules_of(src) == ["DET-RANDOM"]
        src = "from random import randint\nx = randint(0, 9)\n"
        assert rules_of(src) == ["DET-RANDOM"]

    def test_seeded_random_instance_clean(self):
        src = "import random\nr = random.Random(3)\n"
        assert rules_of(src) == []

    def test_os_entropy_flagged(self):
        assert rules_of("import os\nx = os.urandom(8)\n") == \
            ["DET-RANDOM"]
        assert rules_of("import uuid\nx = uuid.uuid4()\n") == \
            ["DET-RANDOM"]
        assert rules_of("import secrets\nx = secrets.token_hex()\n") == \
            ["DET-RANDOM"]

    def test_local_name_shadowing_not_flagged(self):
        # no `import random`: attribute chains on local objects are fine
        src = "x = obj.random.rand(3)\n"
        assert rules_of(src) == []


# ----------------------------------------------------------------------
# DET-CLOCK
# ----------------------------------------------------------------------
CLOCK_SRC = "import time\nstart = time.time()\n"
PERF_SRC = "import time\nstart = time.perf_counter()\n"


class TestWallClock:
    def test_wall_clock_in_library_flagged(self):
        assert rules_of(CLOCK_SRC) == ["DET-CLOCK"]
        assert rules_of(PERF_SRC) == ["DET-CLOCK"]

    def test_benchmarks_whitelisted(self):
        assert rules_of(CLOCK_SRC, BENCH) == []
        assert rules_of(PERF_SRC, BENCH) == []

    def test_autotune_trial_loop_whitelisted_by_qualname(self):
        src = ("import time\n"
               "def search_schedule():\n"
               "    return time.perf_counter()\n"
               "def other():\n"
               "    return time.perf_counter()\n")
        findings = findings_of(src, "src/repro/emu/autotune.py")
        assert [f.rule for f in findings] == ["DET-CLOCK"]
        assert findings[0].line == 5  # only the non-whitelisted scope

    def test_monotonic_exempt_everywhere(self):
        src = "import time\ndeadline = time.monotonic() + 2.0\n"
        assert rules_of(src) == []

    def test_datetime_now_flagged(self):
        src = "import datetime\nx = datetime.datetime.now()\n"
        assert rules_of(src) == ["DET-CLOCK"]


# ----------------------------------------------------------------------
# DET-SETORDER
# ----------------------------------------------------------------------
class TestSetOrder:
    def test_set_loop_feeding_stream_draws_flagged(self):
        src = ("def f(stream):\n"
               "    out = []\n"
               "    for key in {1, 2, 3}:\n"
               "        out.append(stream.integers(9, (4,)))\n"
               "    return out\n")
        assert "DET-SETORDER" in rules_of(src, BENCH)

    def test_set_call_loop_feeding_rng_flagged(self):
        src = ("def f(rng, items):\n"
               "    for key in set(items):\n"
               "        rng.normal(size=3)\n")
        assert rules_of(src) == ["DET-SETORDER"]

    def test_comprehension_over_set_flagged(self):
        src = ("def f(rng, items):\n"
               "    return [rng.normal() for k in frozenset(items)]\n")
        assert rules_of(src) == ["DET-SETORDER"]

    def test_sorted_iteration_clean(self):
        src = ("def f(rng, items):\n"
               "    for key in sorted(set(items)):\n"
               "        rng.normal(size=3)\n")
        assert rules_of(src) == []

    def test_set_loop_without_draws_clean(self):
        src = ("def f(items):\n"
               "    total = 0\n"
               "    for key in set(items):\n"
               "        total += key\n"
               "    return total\n")
        assert rules_of(src) == []


# ----------------------------------------------------------------------
# SUB-DRAW
# ----------------------------------------------------------------------
RAW_DRAW = ("def f(config):\n"
            "    return config.stream.integers(9, (4, 4))\n")


class TestSubstreamKeying:
    def test_raw_draw_outside_owners_flagged(self):
        assert rules_of(RAW_DRAW) == ["SUB-DRAW"]

    def test_bulk_draws_outside_owners_flagged(self):
        src = ("from repro.prng.streams import bulk_draws\n"
               "def f(stream):\n"
               "    return bulk_draws(stream, 9, 16, (4,))\n")
        assert rules_of(src) == ["SUB-DRAW"]

    @pytest.mark.parametrize("owner", [
        "src/repro/emu/engine.py",
        "src/repro/emu/parallel.py",
        "src/repro/rtl/vectorized.py",
        "src/repro/rtl/systolic.py",
        "src/repro/prng/streams.py",
    ])
    def test_draw_order_owners_whitelisted(self, owner):
        assert rules_of(RAW_DRAW, owner) == []

    def test_spawn_is_the_legal_derivation(self):
        src = ("def f(config, key):\n"
               "    sub = config.stream.spawn(key)\n"
               "    return sub\n")
        assert rules_of(src) == []

    def test_numpy_generator_not_a_stream(self):
        src = ("import numpy as np\n"
               "def f():\n"
               "    rng = np.random.default_rng(0)\n"
               "    return rng.integers(0, 9, size=4)\n")
        assert rules_of(src) == []

    def test_lfsr_bank_draw_flagged(self):
        src = ("def f(bank):\n"
               "    return bank.draw((4,))\n")
        assert rules_of(src) == ["SUB-DRAW"]


# ----------------------------------------------------------------------
# LOCK-WRITE
# ----------------------------------------------------------------------
GUARDED_CLASS = """\
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        #: guarded-by: _lock
        self._hits = 0
        #: guarded-by: _lock
        self._entries = {{}}

    def touch(self):
{body}
"""


def guarded(body):
    indented = "\n".join("        " + line for line in body.splitlines())
    return GUARDED_CLASS.format(body=indented)


class TestLockDiscipline:
    def test_unlocked_write_flagged(self):
        assert rules_of(guarded("self._hits = 1")) == ["LOCK-WRITE"]

    def test_unlocked_augassign_flagged(self):
        assert rules_of(guarded("self._hits += 1")) == ["LOCK-WRITE"]

    def test_unlocked_subscript_store_flagged(self):
        assert rules_of(guarded("self._entries['k'] = 1")) == \
            ["LOCK-WRITE"]

    def test_unlocked_mutator_call_flagged(self):
        assert rules_of(guarded("self._entries.clear()")) == \
            ["LOCK-WRITE"]

    def test_unlocked_delete_flagged(self):
        assert rules_of(guarded("del self._entries['k']")) == \
            ["LOCK-WRITE"]

    def test_unlocked_tuple_unpack_flagged(self):
        assert rules_of(guarded("self._hits, other = 1, 2")) == \
            ["LOCK-WRITE"]

    def test_unlocked_list_unpack_flagged(self):
        assert rules_of(guarded("[self._hits, other] = [1, 2]")) == \
            ["LOCK-WRITE"]

    def test_unlocked_starred_unpack_flagged(self):
        assert rules_of(guarded("first, *self._hits = [1, 2, 3]")) == \
            ["LOCK-WRITE"]

    def test_unlocked_for_target_flagged(self):
        body = "for self._hits in range(3):\n    pass"
        assert rules_of(guarded(body)) == ["LOCK-WRITE"]

    def test_unlocked_with_as_flagged(self):
        body = "with open('x') as self._hits:\n    pass"
        assert rules_of(guarded(body)) == ["LOCK-WRITE"]

    def test_write_under_lock_clean(self):
        body = "with self._lock:\n    self._hits += 1"
        assert rules_of(guarded(body)) == []

    def test_unpack_under_lock_clean(self):
        body = "with self._lock:\n    self._hits, other = 1, 2"
        assert rules_of(guarded(body)) == []

    def test_plain_name_unpack_not_flagged(self):
        assert rules_of(guarded("a, b = 1, 2")) == []

    def test_init_is_exempt(self):
        # the annotated initialization itself must not self-flag
        assert rules_of(guarded("pass")) == []

    def test_same_line_annotation(self):
        src = ("import threading\n"
               "class C:\n"
               "    def __init__(self):\n"
               "        self._lock = threading.Lock()\n"
               "        self._n = 0  #: guarded-by: _lock\n"
               "    def bump(self):\n"
               "        self._n += 1\n")
        assert rules_of(src) == ["LOCK-WRITE"]

    def test_unannotated_attribute_not_checked(self):
        assert rules_of(guarded("self._other = 1")) == []

    def test_annotation_in_docstring_ignored(self):
        src = ('class C:\n'
               '    """Docs quoting #: guarded-by: _lock syntax."""\n'
               '    def __init__(self):\n'
               '        self._lock = None\n'
               '    def f(self):\n'
               '        self._lock = 1\n')
        assert rules_of(src) == []

    def test_other_class_same_attr_name_not_flagged(self):
        src = guarded("with self._lock:\n    self._hits += 1") + (
            "\nclass Free:\n"
            "    def touch(self):\n"
            "        self._hits = 1\n")
        assert rules_of(src) == []


# ----------------------------------------------------------------------
# HYG rules
# ----------------------------------------------------------------------
class TestHygiene:
    def test_library_assert_flagged(self):
        src = "def f(x):\n    assert x > 0\n    return x\n"
        assert rules_of(src) == ["HYG-ASSERT"]

    def test_benchmark_assert_exempt(self):
        src = "def f(x):\n    assert x > 0\n    return x\n"
        assert rules_of(src, BENCH) == []

    def test_bare_except_flagged(self):
        src = ("try:\n    x = 1\nexcept:\n    pass\n")
        assert rules_of(src) == ["HYG-EXCEPT"]

    def test_broad_except_flagged(self):
        src = ("try:\n    x = 1\nexcept Exception:\n    pass\n")
        assert rules_of(src) == ["HYG-EXCEPT"]

    def test_specific_except_clean(self):
        src = ("try:\n    x = 1\nexcept ValueError:\n    pass\n")
        assert rules_of(src) == []

    def test_cleanup_and_reraise_exempt(self):
        src = ("try:\n    x = 1\n"
               "except BaseException:\n"
               "    cleanup = True\n"
               "    raise\n")
        assert rules_of(src) == []

    def test_bare_type_ignore_flagged(self):
        src = "x = broken()  # type: ignore\n"
        assert rules_of(src) == ["HYG-IGNORE"]

    def test_scoped_type_ignore_clean(self):
        src = "x = broken()  # type: ignore[attr-defined]\n"
        assert rules_of(src) == []

    def test_type_ignore_in_docstring_not_flagged(self):
        src = '"""Docs about `# type: ignore` comments."""\nx = 1\n'
        assert rules_of(src) == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_same_line_suppression(self):
        src = ("import time\n"
               "t = time.time()  # reprolint: disable=DET-CLOCK  why\n")
        result = lint_source(src, LIB)
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["DET-CLOCK"]

    def test_comment_above_suppression(self):
        src = ("import time\n"
               "# reprolint: disable=DET-CLOCK  progress only\n"
               "t = time.time()\n")
        assert rules_of(src) == []

    def test_multiline_justification_block(self):
        src = ("import time\n"
               "# reprolint: disable=DET-CLOCK  a longer story\n"
               "# continues on a second comment line\n"
               "t = time.time()\n")
        assert rules_of(src) == []

    def test_wrong_rule_id_does_not_suppress(self):
        src = ("import time\n"
               "t = time.time()  # reprolint: disable=SUB-DRAW\n")
        assert rules_of(src) == ["DET-CLOCK"]

    def test_disable_all(self):
        src = ("import time\n"
               "t = time.time()  # reprolint: disable=all\n")
        assert rules_of(src) == []

    def test_disable_file(self):
        src = ("# reprolint: disable-file=DET-CLOCK\n"
               "import time\n"
               "a = time.time()\n"
               "b = time.perf_counter()\n")
        assert rules_of(src) == []

    def test_directive_in_docstring_inert(self):
        src = ('"""# reprolint: disable-file=DET-CLOCK"""\n'
               "import time\n"
               "t = time.time()\n")
        assert rules_of(src) == ["DET-CLOCK"]

    def test_comma_separated_rules(self):
        sup = Suppressions.from_source(
            "x = 1  # reprolint: disable=DET-CLOCK, SUB-DRAW\n")
        assert sup.allows("DET-CLOCK", 1)
        assert sup.allows("SUB-DRAW", 1)
        assert not sup.allows("HYG-ASSERT", 1)


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = findings_of(CLOCK_SRC)
        assert findings
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).write(path)
        loaded = Baseline.load(path)
        new, old = loaded.split(findings)
        assert new == [] and len(old) == len(findings)

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert len(baseline) == 0

    def test_new_occurrence_of_same_kind_still_fails(self):
        baseline = Baseline.from_findings(findings_of(CLOCK_SRC))
        doubled = ("import time\n"
                   "start = time.time()\n"
                   "start = time.time()\n")
        new, old = baseline.split(findings_of(doubled))
        assert len(old) == 1 and len(new) == 1

    def test_fingerprint_survives_line_drift(self):
        baseline = Baseline.from_findings(findings_of(CLOCK_SRC))
        drifted = ("import time\n\n\n# pushed down\n"
                   "start = time.time()\n")
        new, old = baseline.split(findings_of(drifted))
        assert new == [] and len(old) == 1

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def make_tree(tmp_path, source, name="src/repro/mod.py"):
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return tmp_path


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = make_tree(tmp_path, "x = 1\n")
        assert cli_main(["--root", str(root), str(root / "src")]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one_and_report(self, tmp_path, capsys):
        root = make_tree(tmp_path, CLOCK_SRC)
        assert cli_main(["--root", str(root), str(root / "src")]) == 1
        out = capsys.readouterr().out
        assert "DET-CLOCK" in out and "src/repro/mod.py:2" in out

    def test_json_format(self, tmp_path, capsys):
        root = make_tree(tmp_path, CLOCK_SRC)
        code = cli_main(["--root", str(root), "--format", "json",
                         str(root / "src")])
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert report["counts"]["findings"] == 1
        assert report["findings"][0]["rule"] == "DET-CLOCK"

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        root = make_tree(tmp_path, CLOCK_SRC)
        argv = ["--root", str(root), str(root / "src")]
        assert cli_main(argv + ["--write-baseline"]) == 0
        assert (root / "reprolint-baseline.json").exists()
        assert cli_main(argv) == 0  # grandfathered
        assert "1 baselined" in capsys.readouterr().out.splitlines()[-1]

    def test_output_file(self, tmp_path, capsys):
        root = make_tree(tmp_path, CLOCK_SRC)
        out_file = tmp_path / "report.json"
        cli_main(["--root", str(root), "--format", "json",
                  "--output", str(out_file), str(root / "src")])
        capsys.readouterr()
        assert json.loads(out_file.read_text())["tool"] == "reprolint"

    def test_list_rules_names_every_rule(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out

    def test_parse_error_reported_not_raised(self, tmp_path, capsys):
        root = make_tree(tmp_path, "def broken(:\n")
        assert cli_main(["--root", str(root), str(root / "src")]) == 1
        assert "PARSE-ERROR" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Seeded mutations of real repo files (the acceptance checks)
# ----------------------------------------------------------------------
def lint_real(relpath, mutate=None):
    source = (REPO / relpath).read_text(encoding="utf-8")
    if mutate:
        source = mutate(source)
    return lint_source(source, relpath)


class TestSeededMutations:
    def test_originals_are_clean(self):
        for relpath in ("src/repro/serve/session.py",
                        "src/repro/serve/cache.py",
                        "src/repro/emu/gemm.py"):
            assert lint_real(relpath).findings == []

    def test_ambient_np_random_call_caught(self):
        # an ambient draw slipped into the serving session
        anchor = "    arr = np.asarray(x, np.float64)\n"

        def mutate(src):
            assert anchor in src
            return src.replace(
                anchor, anchor + "    jitter = np.random.rand(3)\n",
                1)

        findings = lint_real("src/repro/serve/session.py",
                             mutate).findings
        assert [f.rule for f in findings] == ["DET-RANDOM"]
        assert "np.random.rand" in findings[0].snippet

    def test_raw_stream_draw_outside_whitelist_caught(self):
        anchor = "    arr = np.asarray(x, np.float64)\n"

        def mutate(src):
            assert anchor in src
            return src.replace(
                anchor,
                anchor +
                "    raw = spec_config.stream.integers(9, (4,))\n",
                1)

        findings = lint_real("src/repro/serve/session.py",
                             mutate).findings
        assert [f.rule for f in findings] == ["SUB-DRAW"]

    def test_unlocked_guarded_write_caught(self):
        # a "fast path" refreshing the LRU order without the lock
        anchor = "    def clear(self) -> None:\n"

        def mutate(src):
            assert anchor in src
            return src.replace(
                anchor,
                "    def touch(self, key) -> None:\n"
                "        self._entries.move_to_end(key)\n\n" + anchor,
                1)

        findings = lint_real("src/repro/serve/cache.py", mutate).findings
        assert [f.rule for f in findings] == ["LOCK-WRITE"]
        assert "_lock" in findings[0].message

    def test_library_assert_caught(self):
        anchor = "def matmul("

        def mutate(src):
            assert anchor in src
            return src.replace(
                anchor, "def _check(x):\n    assert x\n\n" + anchor, 1)

        findings = lint_real("src/repro/emu/gemm.py", mutate).findings
        assert [f.rule for f in findings] == ["HYG-ASSERT"]


# ----------------------------------------------------------------------
# Repo-wide self-run: the tree stays clean (tier-1 gate)
# ----------------------------------------------------------------------
class TestSelfRun:
    def test_repo_is_clean(self):
        paths = [REPO / p for p in ("src", "benchmarks", "tools",
                                    "examples")]
        findings, suppressed = run_paths(paths, root=REPO)
        assert findings == [], "\n".join(
            f"{f.location}: {f.rule} {f.message}" for f in findings)
        # the deliberate, documented exceptions stay suppressed — a
        # shrinking count means someone deleted a justification comment
        assert suppressed, "expected documented suppressions in-tree"

    def test_cli_module_entrypoint(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src", "tools"],
            cwd=REPO, capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin"})
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout

    def test_no_baseline_file_in_repo(self):
        # the PR fixed or suppressed everything; nothing is grandfathered
        assert not (REPO / "reprolint-baseline.json").exists()


# ----------------------------------------------------------------------
# Satellite regression: the systolic invariant survives python -O
# ----------------------------------------------------------------------
class TestAssertConversion:
    def test_no_asserts_left_in_library_code(self):
        findings, _ = run_paths([REPO / "src"], root=REPO)
        assert [f for f in findings if f.rule == "HYG-ASSERT"] == []

    def test_systolic_area_guard_raises_real_exception(self):
        import repro.rtl.systolic as systolic
        from types import SimpleNamespace

        original = systolic.build_mac_netlist
        fake = SimpleNamespace(stages=[], area_ge=1e9)
        systolic.build_mac_netlist = lambda config: fake
        try:
            with pytest.raises(RuntimeError, match="lost PE area"):
                systolic.build_systolic_netlist(systolic.SystolicConfig())
        finally:
            systolic.build_mac_netlist = original

    def test_guard_survives_dash_O(self):
        # under -O an `assert` would vanish; the raise must not
        script = (
            "from types import SimpleNamespace\n"
            "import repro.rtl.systolic as systolic\n"
            "systolic.build_mac_netlist = lambda config: "
            "SimpleNamespace(stages=[], area_ge=1e9)\n"
            "try:\n"
            "    systolic.build_systolic_netlist("
            "systolic.SystolicConfig())\n"
            "except RuntimeError:\n"
            "    print('GUARDED')\n")
        proc = subprocess.run(
            [sys.executable, "-O", "-c", script],
            cwd=REPO, capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin"})
        assert proc.returncode == 0, proc.stderr
        assert "GUARDED" in proc.stdout
