"""reproflow: program model, call graph, flow rules, and the self-run.

Mirrors the reprolint test layout, one layer up:

* **fixture programs** — small multi-module virtual trees per rule,
  fed to :func:`analyze_files` so interprocedural behavior (summaries,
  call-graph edges, lock propagation) is what is under test;
* **seeded mutations** — insert a stream pass-through helper, a
  time-derived spawn key, and an inverted lock nesting into the *real*
  tree (via source overlays, nothing touches disk) and require exactly
  the expected finding;
* **the repo-wide self-run** — the full tree must be flow-clean, the
  serve-tier lock graph must match the hand-audited edge set, and the
  whole pass must stay inside its two-second budget.
"""

import json
import time as _time
from pathlib import Path

import pytest

from repro.analysis.reproflow import (
    FLOW_RULES,
    analyze_files,
    analyze_paths,
    build_callgraph,
    build_program,
    module_name,
)
from repro.analysis.reprolint.cli import main as cli_main

REPO = Path(__file__).resolve().parent.parent.parent

#: Virtual library paths — outside every policy whitelist.
LIB = "src/repro/somepkg/a.py"
LIB_B = "src/repro/somepkg/b.py"
#: A draw-owner path (policy allows live streams there).
OWNER = "src/repro/emu/engine.py"


def flow(*files):
    """Rule ids over a virtual (relpath, source) tree, sorted."""
    report = analyze_files(list(files))
    return [f.rule for f in report.findings]


def flow_findings(*files):
    return analyze_files(list(files)).findings


# ----------------------------------------------------------------------
# Program model
# ----------------------------------------------------------------------
class TestProgram:
    def test_module_names(self):
        assert module_name("src/repro/serve/pool.py") == "repro.serve.pool"
        assert module_name("src/repro/__init__.py") == "repro"
        assert module_name("benchmarks/bench_x.py") == "benchmarks.bench_x"
        assert module_name("tools/check_docs.py") == "tools.check_docs"

    def test_nested_defs_are_separate_functions(self):
        src = ("def outer():\n"
               "    def inner():\n"
               "        pass\n"
               "    return inner\n")
        program = build_program([(LIB, src)])
        fids = set(program.functions)
        assert "repro.somepkg.a.outer" in fids
        assert "repro.somepkg.a.outer.inner" in fids

    def test_relative_import_aliases_resolve(self):
        pkg = "src/repro/somepkg/__init__.py"
        src = "from .a import helper\n"
        program = build_program([(pkg, ""),
                                 (LIB, "def helper():\n    pass\n"),
                                 ("src/repro/somepkg/c.py", src)])
        module = program.modules["repro.somepkg.c"]
        assert module.aliases["helper"] == "repro.somepkg.a.helper"

    def test_resolve_symbol_chases_package_reexport(self):
        pkg = ("src/repro/somepkg/__init__.py",
               "from .a import Widget\n")
        mod = (LIB, "class Widget:\n    def __init__(self):\n        pass\n")
        program = build_program([pkg, mod])
        kind, ident = program.resolve_symbol("repro.somepkg.Widget")
        assert (kind, ident) == ("class", "repro.somepkg.a.Widget")


# ----------------------------------------------------------------------
# Call graph
# ----------------------------------------------------------------------
class TestCallGraph:
    def edges(self, *files):
        program = build_program(list(files))
        return build_callgraph(program).edges

    def test_same_module_function_call(self):
        src = ("def helper():\n    pass\n"
               "def caller():\n    helper()\n")
        edges = self.edges((LIB, src))
        assert "repro.somepkg.a.helper" in \
            edges["repro.somepkg.a.caller"]

    def test_self_method_through_base_class(self):
        src = ("class Base:\n"
               "    def step(self):\n        pass\n"
               "class Child(Base):\n"
               "    def run(self):\n        self.step()\n")
        edges = self.edges((LIB, src))
        assert "repro.somepkg.a.Base.step" in \
            edges["repro.somepkg.a.Child.run"]

    def test_constructor_pinned_attribute_receiver(self):
        src = ("class Worker:\n"
               "    def crunch(self):\n        pass\n"
               "class Owner:\n"
               "    def __init__(self):\n"
               "        self.worker = Worker()\n"
               "    def go(self):\n        self.worker.crunch()\n")
        edges = self.edges((LIB, src))
        assert "repro.somepkg.a.Worker.crunch" in \
            edges["repro.somepkg.a.Owner.go"]

    def test_sibling_method_not_reachable_by_bare_name(self):
        src = ("class C:\n"
               "    def helper(self):\n        pass\n"
               "    def caller(self):\n"
               "        helper()\n")   # NameError at runtime, not a call
        edges = self.edges((LIB, src))
        assert "repro.somepkg.a.C.helper" not in \
            edges.get("repro.somepkg.a.C.caller", set())

    def test_common_method_names_stay_unresolved(self):
        src = ("class Registry:\n"
               "    def get(self, key):\n        pass\n"
               "def f(d):\n    d.get('x')\n")
        edges = self.edges((LIB, src))
        assert "repro.somepkg.a.Registry.get" not in \
            edges.get("repro.somepkg.a.f", set())

    def test_unique_distinctive_method_resolves(self):
        src = ("class Pool:\n"
               "    def redistribute(self):\n        pass\n"
               "def f(p):\n    p.redistribute()\n")
        edges = self.edges((LIB, src))
        assert "repro.somepkg.a.Pool.redistribute" in \
            edges["repro.somepkg.a.f"]

    def test_cross_module_alias_call(self):
        a = (LIB, "def shared():\n    pass\n")
        b = (LIB_B, "from repro.somepkg.a import shared\n"
                    "def caller():\n    shared()\n")
        edges = self.edges(a, b)
        assert "repro.somepkg.a.shared" in \
            edges["repro.somepkg.b.caller"]


# ----------------------------------------------------------------------
# FLOW-STREAM
# ----------------------------------------------------------------------
class TestFlowStream:
    def test_raw_param_to_unresolved_callee_flagged(self):
        src = ("import logging\n"
               "def leak(stream):\n"
               "    logging.info(stream)\n")
        assert flow((LIB, src)) == ["FLOW-STREAM"]

    def test_two_hop_escape_fires_at_real_misuse(self):
        src = ("import logging\n"
               "def inner(stream):\n"
               "    logging.info(stream)\n"
               "def outer(config):\n"
               "    inner(config.stream)\n")
        found = flow_findings((LIB, src))
        assert [f.rule for f in found] == ["FLOW-STREAM"]
        # the finding lands in the helper that actually leaks, not at
        # the in-program hand-off (which the pass analyzes through)
        assert found[0].line == 3

    def test_spawned_substream_is_clean(self):
        src = ("import logging\n"
               "def ok(config):\n"
               "    sub = config.stream.spawn(7)\n"
               "    logging.info(sub)\n")
        assert flow((LIB, src)) == []

    def test_inspection_builtins_are_benign(self):
        src = ("def ok(config):\n"
               "    if isinstance(config.stream, object):\n"
               "        return type(config.stream)\n")
        assert flow((LIB, src)) == []

    def test_draw_through_alias_flagged(self):
        src = ("def bad(config):\n"
               "    s = config.stream\n"
               "    return s.integers(9, (4,))\n")
        assert flow((LIB, src)) == ["FLOW-STREAM"]

    def test_store_into_attribute_flagged(self):
        src = ("class Holder:\n"
               "    def grab(self, config):\n"
               "        self.cached = config.stream\n")
        assert flow((LIB, src)) == ["FLOW-STREAM"]

    def test_store_into_subscript_flagged(self):
        src = ("def stash(config, registry):\n"
               "    registry['s'] = config.stream\n")
        assert flow((LIB, src)) == ["FLOW-STREAM"]

    def test_draw_owner_scope_exempt(self):
        src = ("import logging\n"
               "def leak(stream):\n"
               "    logging.info(stream)\n")
        assert flow((OWNER, src)) == []

    def test_suppression_comment_applies(self):
        src = ("import logging\n"
               "def leak(stream):\n"
               "    logging.info(stream)  "
               "# reprolint: disable=FLOW-STREAM  debug tap\n")
        report = analyze_files([(LIB, src)])
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["FLOW-STREAM"]


# ----------------------------------------------------------------------
# FLOW-KEY
# ----------------------------------------------------------------------
class TestFlowKey:
    def test_time_derived_key_flagged(self):
        src = ("import time\n"
               "def bad(stream):\n"
               "    return stream.spawn(time.time())\n")
        assert flow((LIB, src)) == ["FLOW-KEY"]

    def test_wrapped_time_key_still_flagged(self):
        src = ("import time\n"
               "def bad(stream):\n"
               "    return stream.spawn(int(time.time() * 1000))\n")
        assert flow((LIB, src)) == ["FLOW-KEY"]

    def test_id_and_getpid_and_hash_flagged(self):
        src = ("import os\n"
               "def a(stream, x):\n    return stream.spawn(id(x))\n"
               "def b(stream):\n    return stream.spawn(os.getpid())\n"
               "def c(stream, x):\n    return stream.spawn(hash(x))\n")
        assert flow((LIB, src)) == ["FLOW-KEY"] * 3

    def test_set_iteration_key_flagged(self):
        src = ("def bad(stream, names):\n"
               "    for name in set(names):\n"
               "        stream.spawn(name)\n")
        assert flow((LIB, src)) == ["FLOW-KEY"]

    def test_content_hash_key_clean(self):
        src = ("import hashlib\n"
               "def ok(stream, payload):\n"
               "    key = int(hashlib.sha256(payload).hexdigest()[:8], 16)\n"
               "    return stream.spawn(key)\n")
        assert flow((LIB, src)) == []

    def test_index_and_literal_keys_clean(self):
        src = ("def ok(stream, items):\n"
               "    subs = [stream.spawn(i) for i, _ in enumerate(items)]\n"
               "    return subs, stream.spawn(42)\n")
        assert flow((LIB, src)) == []

    def test_interprocedural_nondet_return_flagged(self):
        src = ("import time\n"
               "def fresh_key():\n"
               "    return int(time.monotonic() * 1e6)\n"
               "def bad(stream):\n"
               "    return stream.spawn(fresh_key())\n")
        found = flow_findings((LIB, src))
        assert [f.rule for f in found] == ["FLOW-KEY"]
        assert found[0].line == 5

    def test_import_alias_does_not_hide_source(self):
        src = ("import time as _t\n"
               "def bad(stream):\n"
               "    return stream.spawn(_t.time())\n")
        assert flow((LIB, src)) == ["FLOW-KEY"]

    def test_benchmarks_scope_exempt(self):
        src = ("import time\n"
               "def bench(stream):\n"
               "    return stream.spawn(time.time())\n")
        assert flow(("benchmarks/bench_keys.py", src)) == []


# ----------------------------------------------------------------------
# LOCK-ORDER
# ----------------------------------------------------------------------
_LOCK_HEADER = ("import threading\n"
                "class S:\n"
                "    def __init__(self):\n"
                "        self._a = threading.Lock()\n"
                "        self._b = threading.Lock()\n")


class TestLockOrder:
    def test_direct_cycle_flagged(self):
        src = (_LOCK_HEADER +
               "    def one(self):\n"
               "        with self._a:\n"
               "            with self._b:\n"
               "                pass\n"
               "    def two(self):\n"
               "        with self._b:\n"
               "            with self._a:\n"
               "                pass\n")
        assert "LOCK-ORDER" in flow((LIB, src))

    def test_interprocedural_cycle_flagged(self):
        src = (_LOCK_HEADER +
               "    def one(self):\n"
               "        with self._a:\n"
               "            self.take_b()\n"
               "    def take_b(self):\n"
               "        with self._b:\n"
               "            pass\n"
               "    def two(self):\n"
               "        with self._b:\n"
               "            self.take_a()\n"
               "    def take_a(self):\n"
               "        with self._a:\n"
               "            pass\n")
        assert "LOCK-ORDER" in flow((LIB, src))

    def test_consistent_nesting_clean(self):
        src = (_LOCK_HEADER +
               "    def one(self):\n"
               "        with self._a:\n"
               "            with self._b:\n"
               "                pass\n"
               "    def two(self):\n"
               "        with self._a:\n"
               "            with self._b:\n"
               "                pass\n")
        assert flow((LIB, src)) == []

    def test_pin_inversion_flagged_without_cycle(self):
        src = ("import threading\n"
               "class S:\n"
               "    def __init__(self):\n"
               "        #: lock-order: 10\n"
               "        self._a = threading.Lock()\n"
               "        #: lock-order: 20\n"
               "        self._b = threading.Lock()\n"
               "    def one(self):\n"
               "        with self._b:\n"
               "            with self._a:\n"
               "                pass\n")
        found = flow_findings((LIB, src))
        assert [f.rule for f in found] == ["LOCK-ORDER"]
        assert "order" in found[0].message

    def test_rlock_reentry_exempt_plain_lock_not(self):
        rlock = ("import threading\n"
                 "class S:\n"
                 "    def __init__(self):\n"
                 "        self._a = threading.RLock()\n"
                 "    def outer(self):\n"
                 "        with self._a:\n"
                 "            self.inner()\n"
                 "    def inner(self):\n"
                 "        with self._a:\n"
                 "            pass\n")
        assert flow((LIB, rlock)) == []
        plain = rlock.replace("RLock", "Lock")
        assert "LOCK-ORDER" in flow((LIB, plain))

    def test_torn_read_of_two_guarded_attrs_flagged(self):
        src = ("import threading\n"
               "class S:\n"
               "    def __init__(self):\n"
               "        self._a = threading.Lock()\n"
               "        #: guarded-by: _a\n"
               "        self._hits = 0\n"
               "        #: guarded-by: _a\n"
               "        self._misses = 0\n"
               "    def ratio(self):\n"
               "        return self._hits / (self._hits + self._misses)\n")
        found = flow_findings((LIB, src))
        assert [f.rule for f in found] == ["LOCK-ORDER"]

    def test_read_under_lock_clean(self):
        src = ("import threading\n"
               "class S:\n"
               "    def __init__(self):\n"
               "        self._a = threading.Lock()\n"
               "        #: guarded-by: _a\n"
               "        self._hits = 0\n"
               "        #: guarded-by: _a\n"
               "        self._misses = 0\n"
               "    def ratio(self):\n"
               "        with self._a:\n"
               "            return self._hits / (self._hits +\n"
               "                                 self._misses)\n")
        assert flow((LIB, src)) == []

    def test_rmw_outside_lock_flagged(self):
        src = ("import threading\n"
               "class S:\n"
               "    def __init__(self):\n"
               "        self._a = threading.Lock()\n"
               "        #: guarded-by: _a\n"
               "        self._count = 0\n"
               "    def bump(self):\n"
               "        self._count += 1\n")
        assert flow((LIB, src)) == ["LOCK-ORDER"]

    def test_init_is_exempt(self):
        src = ("import threading\n"
               "class S:\n"
               "    def __init__(self):\n"
               "        self._a = threading.Lock()\n"
               "        #: guarded-by: _a\n"
               "        self._count = 0\n"
               "        self._count += 1\n")
        assert flow((LIB, src)) == []


# ----------------------------------------------------------------------
# Artifacts
# ----------------------------------------------------------------------
class TestArtifacts:
    SRC = ("import threading\n"
           "class S:\n"
           "    def __init__(self):\n"
           "        #: lock-order: 10\n"
           "        self._a = threading.Lock()\n"
           "        self._b = threading.Lock()\n"
           "    def one(self):\n"
           "        with self._a:\n"
           "            with self._b:\n"
           "                self.helper()\n"
           "    def helper(self):\n"
           "        pass\n")

    def test_callgraph_schema_and_determinism(self):
        first = analyze_files([(LIB, self.SRC)]).callgraph
        second = analyze_files([(LIB, self.SRC)]).callgraph
        assert first == second
        assert first["tool"] == "reproflow"
        assert first["artifact"] == "callgraph"
        assert first["format_version"] == 1
        assert ["repro.somepkg.a.S.one", "repro.somepkg.a.S.helper"] in \
            first["edges"]
        assert first["edges"] == sorted(first["edges"])

    def test_lockgraph_schema(self):
        export = analyze_files([(LIB, self.SRC)]).lockgraph
        assert export["tool"] == "reproflow"
        assert export["artifact"] == "lockgraph"
        assert export["format_version"] == 1
        by_attr = {lock["attr"]: lock for lock in export["locks"]}
        assert by_attr["_a"]["order"] == 10
        assert by_attr["_b"]["order"] is None
        assert export["cycles"] == []
        assert [(e["from"], e["to"]) for e in export["edges"]] == \
            [("repro.somepkg.a.S._a", "repro.somepkg.a.S._b")]


# ----------------------------------------------------------------------
# Seeded mutations on the real tree
# ----------------------------------------------------------------------
SESSION = "src/repro/serve/session.py"
POOL = "src/repro/serve/pool.py"


def mutate(relpath: str, transform):
    """Flow-analyze src/ with ``relpath``'s source transformed."""
    source = (REPO / relpath).read_text(encoding="utf-8")
    mutated = transform(source)
    assert mutated != source, "mutation did not apply"
    return analyze_paths(["src"], root=REPO,
                         overlays={relpath: mutated})


class TestSeededMutations:
    def test_stream_passthrough_helper_caught(self):
        report = mutate(SESSION, lambda src: src + (
            "\n\ndef _tap_stream_for_debug(config, sink):\n"
            "    sink['stream'] = config.stream\n"))
        assert [f.rule for f in report.findings] == ["FLOW-STREAM"]
        assert report.findings[0].path == SESSION

    def test_time_derived_spawn_key_caught(self):
        # time.monotonic is DET-CLOCK-exempt everywhere, so the per-file
        # pass would stay silent on this — only FLOW-KEY sees it
        report = mutate(POOL, lambda src: src + (
            "\n\ndef _respawn_for_debug(stream):\n"
            "    return stream.spawn(int(time.monotonic() * 1e6))\n"))
        assert [f.rule for f in report.findings] == ["FLOW-KEY"]
        assert report.findings[0].path == POOL

    def test_inverted_lock_nesting_caught(self):
        anchor = "    def stats(self) -> dict:"
        inverted = ("    def _inverted_snapshot_for_debug(self):\n"
                    "        with self._stats_lock:\n"
                    "            with self._route_lock:\n"
                    "                return None\n\n")
        report = mutate(POOL,
                        lambda src: src.replace(anchor, inverted + anchor))
        assert [f.rule for f in report.findings] == ["LOCK-ORDER"]
        finding = report.findings[0]
        assert finding.path == POOL
        assert "_stats_lock" in finding.message


# ----------------------------------------------------------------------
# Repo-wide self-run, known-good lock graph, and the time budget
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def self_run():
    paths = [p for p in ("src", "benchmarks", "tools", "examples")
             if (REPO / p).exists()]
    start = _time.perf_counter()
    report = analyze_paths(paths, root=REPO)
    elapsed = _time.perf_counter() - start
    return report, elapsed


class TestSelfRun:
    def test_tree_is_flow_clean(self, self_run):
        report, _ = self_run
        assert report.findings == [], "\n".join(
            f"{f.location}: {f.rule} {f.message}"
            for f in report.findings)

    def test_serve_lock_graph_matches_audit(self, self_run):
        report, _ = self_run
        export = report.lockgraph
        assert export["cycles"] == []
        edges = {(e["from"], e["to"]) for e in export["edges"]}
        pool = "repro.serve.pool"
        expected = {
            (f"{pool}.ReplicaPool._reload_lock",
             f"{pool}.ReplicaPool._route_lock"),
            (f"{pool}.ReplicaPool._reload_lock",
             f"{pool}.ReplicaPool._stats_lock"),
            (f"{pool}.ReplicaPool._reload_lock",
             f"{pool}._Replica._lock"),
            (f"{pool}.ReplicaPool._reload_lock",
             f"{pool}._Replica._send_lock"),
            (f"{pool}.ReplicaPool._route_lock",
             f"{pool}._Replica._lock"),
        }
        assert expected <= edges

    def test_canonical_pins_are_recorded(self, self_run):
        report, _ = self_run
        orders = {lock["id"]: lock["order"]
                  for lock in report.lockgraph["locks"]}
        pool = "repro.serve.pool"
        assert orders[f"{pool}.ReplicaPool._reload_lock"] == 10
        assert orders[f"{pool}.ReplicaPool._route_lock"] == 20
        assert orders[f"{pool}.ReplicaPool._stats_lock"] == 30
        assert orders[f"{pool}._Replica._lock"] == 40
        assert orders[f"{pool}._Replica._send_lock"] == 50

    def test_whole_pass_stays_under_two_seconds(self, self_run):
        _, elapsed = self_run
        assert elapsed < 2.0, (
            f"reproflow took {elapsed:.2f}s over the full tree; the "
            f"budget is 2s — profile before adding per-node work")


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCLI:
    def test_flow_run_is_clean_and_writes_artifacts(self, tmp_path,
                                                    capsys):
        callgraph = tmp_path / "callgraph.json"
        lockgraph = tmp_path / "lockgraph.json"
        code = cli_main(["--flow", "--root", str(REPO),
                         "--callgraph", str(callgraph),
                         "--lockgraph", str(lockgraph)])
        capsys.readouterr()
        assert code == 0
        exported = json.loads(callgraph.read_text())
        assert exported["artifact"] == "callgraph"
        assert exported["functions"] > 500
        exported = json.loads(lockgraph.read_text())
        assert exported["artifact"] == "lockgraph"
        assert exported["cycles"] == []

    def test_artifact_flags_require_flow(self, tmp_path, capsys):
        code = cli_main(["--callgraph", str(tmp_path / "x.json"),
                        "--root", str(REPO)])
        capsys.readouterr()
        assert code == 2

    def test_bad_jobs_value_is_usage_error(self, capsys):
        code = cli_main(["--jobs", "0", "--root", str(REPO)])
        capsys.readouterr()
        assert code == 2

    def test_list_rules_includes_flow_catalog(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in FLOW_RULES:
            assert rule.id in out
        assert "DET-CLOCK" in out   # per-file catalog still present

    def test_parallel_lint_is_byte_identical(self, tmp_path, capsys):
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        assert cli_main(["--root", str(REPO), "--format", "json",
                         "--output", str(serial)]) == 0
        assert cli_main(["--root", str(REPO), "--format", "json",
                         "--jobs", "4", "--output", str(parallel)]) == 0
        capsys.readouterr()
        assert serial.read_bytes() == parallel.read_bytes()
