#!/usr/bin/env python
"""Markdown documentation checker: links, anchors, and quoted commands.

Run from the repository root (CI runs it in the docs job; the tier-1
suite runs it through ``tests/test_docs.py``)::

    python tools/check_docs.py

Checks, over ``README.md``, ``DESIGN.md`` and every ``docs/*.md``:

* every relative markdown link ``[text](path)`` resolves to an existing
  file or directory (http/https/mailto links are skipped — the
  environment is offline);
* every anchored link ``path#anchor`` / ``#anchor`` resolves to a
  heading in the target file (GitHub slugification);
* every ``python -m <module>`` quoted in a fenced code block names an
  importable module under ``src/`` (located without importing, so the
  checker needs no third-party packages);
* every ``python <script>.py`` quoted in a fenced code block names an
  existing file.

Exits non-zero when any problem is found, so stale docs fail CI (the
count is printed, not used as the status — exit codes wrap at 256).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List

REPO = Path(__file__).resolve().parent.parent

#: Pages under contract.  New docs/*.md files are picked up
#: automatically.
PAGES = ["README.md", "DESIGN.md"]

_LINK = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^(```|~~~)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")
_PY_MODULE = re.compile(r"\bpython\s+-m\s+([A-Za-z_][\w.]*)")
_PY_SCRIPT = re.compile(r"\bpython\s+([\w./-]+\.py)\b")


def _pages() -> List[Path]:
    pages = [REPO / name for name in PAGES]
    pages.extend(sorted((REPO / "docs").glob("*.md")))
    return [page for page in pages if page.exists()]


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (close enough for our pages):
    lowercase, spaces to dashes, drop everything but word chars/dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set:
    slugs = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match:
            slugs.add(github_slug(match.group(1)))
    return slugs


def _module_exists(dotted: str) -> bool:
    """Locate ``dotted`` under src/ without importing it."""
    base = REPO / "src" / Path(*dotted.split("."))
    return base.with_suffix(".py").exists() or (base / "__init__.py").exists()


def check_page(page: Path) -> List[str]:
    problems = []
    rel = page.relative_to(REPO)
    text = page.read_text(encoding="utf-8")

    # -- links (outside code fences) -----------------------------------
    in_fence = False
    commands: List[str] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            commands.append(line)
            continue
        for target in _LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            dest = (page.parent / path_part).resolve() if path_part \
                else page
            if not dest.exists():
                problems.append(f"{rel}:{lineno}: broken link -> {target}")
                continue
            if anchor and dest.suffix == ".md":
                if anchor not in _anchors(dest):
                    problems.append(
                        f"{rel}:{lineno}: missing anchor -> {target}")

    # -- commands quoted in fenced blocks ------------------------------
    for line in commands:
        for module in _PY_MODULE.findall(line):
            if module.startswith("repro") and not _module_exists(module):
                problems.append(f"{rel}: stale module in command: "
                                f"python -m {module}")
        for script in _PY_SCRIPT.findall(line):
            if not (REPO / script).exists():
                problems.append(f"{rel}: stale script in command: "
                                f"python {script}")
    return problems


def main() -> int:
    pages = _pages()
    problems: List[str] = []
    for page in pages:
        problems.extend(check_page(page))
    for problem in problems:
        print(problem)
    print(f"check_docs: {len(pages)} pages, {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
